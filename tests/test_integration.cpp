// Cross-implementation integration tests (Monte-Carlo style): long chains
// of dependent operations where any single-bit divergence between the
// reference path, the optimized host path, and the simulated accelerator
// path compounds and is caught at the end.
#include <gtest/gtest.h>

#include "kvx/common/hex.hpp"
#include "kvx/core/parallel_sha3.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/keccak/sponge.hpp"

namespace kvx {
namespace {

using keccak::State;

TEST(Integration, IteratedPermutationChainsAgree) {
  // 500 dependent permutations: reference vs optimized.
  State a, b;
  a.lane(0, 0) = 0x4B56u;  // arbitrary nonzero start
  b.lane(0, 0) = 0x4B56u;
  for (int i = 0; i < 500; ++i) {
    keccak::permute(a);
    keccak::permute_fast(b);
  }
  EXPECT_EQ(a, b);
}

TEST(Integration, MonteCarloDigestChain) {
  // SHA-3 MCT shape: digest_i+1 = H(digest_i), 300 iterations, compared
  // between one-shot and incremental APIs.
  std::vector<u8> seed(32, 0xA5);
  auto one_shot = seed;
  auto incremental = seed;
  for (int i = 0; i < 300; ++i) {
    const auto d = keccak::sha3_256(one_shot);
    one_shot.assign(d.begin(), d.end());
    keccak::Hasher h(keccak::Sha3Function::kSha3_256);
    incremental = h.update(incremental).digest();
  }
  EXPECT_EQ(one_shot, incremental);
}

TEST(Integration, AcceleratorBackedXofChain) {
  // XOF chain where the permutation runs on the simulated accelerator
  // (Sponge's pluggable backend — the HW/SW co-design seam), vs host.
  core::VectorKeccak vk({core::Arch::k64Lmul8, 5, 24});
  const auto accel_permute = [&vk](State& s) {
    std::array<State, 1> one = {s};
    vk.permute(one);
    s = one[0];
  };

  std::vector<u8> host_chain = {1, 2, 3};
  std::vector<u8> accel_chain = {1, 2, 3};
  for (int i = 0; i < 10; ++i) {
    host_chain = keccak::shake128(host_chain, 48);
    keccak::Xof xof(keccak::Sha3Function::kShake128, accel_permute);
    xof.absorb(accel_chain);
    accel_chain = xof.squeeze(48);
  }
  EXPECT_EQ(to_hex(host_chain), to_hex(accel_chain));
}

TEST(Integration, BatchChainAcrossArchitectures) {
  // Chained batch hashing: each round feeds the previous digests back in;
  // all three architectures must stay in lockstep with the host.
  std::vector<std::vector<u8>> host(3);
  for (usize i = 0; i < 3; ++i) host[i] = {static_cast<u8>(i), 7, 9};
  auto a32 = host;
  auto a64 = host;

  core::ParallelSha3 accel64({core::Arch::k64Lmul8, 15, 24});
  core::ParallelSha3 accel32({core::Arch::k32Lmul8, 15, 24});
  for (int round = 0; round < 5; ++round) {
    for (auto& m : host) {
      const auto d = keccak::sha3_384(m);
      m.assign(d.begin(), d.end());
    }
    a64 = accel64.hash_batch(keccak::Sha3Function::kSha3_384, a64);
    a32 = accel32.hash_batch(keccak::Sha3Function::kSha3_384, a32);
  }
  for (usize i = 0; i < 3; ++i) {
    EXPECT_EQ(to_hex(a64[i]), to_hex(host[i]));
    EXPECT_EQ(to_hex(a32[i]), to_hex(host[i]));
  }
}

TEST(Integration, SpongeBackendCountsMatch) {
  // The pluggable sponge must invoke its backend exactly as often as the
  // host sponge invokes its own.
  usize calls = 0;
  keccak::Sponge counted(136, keccak::Domain::kSha3, [&calls](State& s) {
    keccak::permute_fast(s);
    ++calls;
  });
  keccak::Sponge plain(136, keccak::Domain::kSha3);
  std::vector<u8> msg(500, 0x11);
  counted.absorb(msg);
  plain.absorb(msg);
  std::array<u8, 32> out_a{}, out_b{};
  counted.squeeze(out_a);
  plain.squeeze(out_b);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(calls, plain.permutation_count());
}

}  // namespace
}  // namespace kvx
