// Differential tests for the host-parallel batch hashing engine.
//
// The engine adds a second parallelism level (worker threads) on top of the
// paper's SIMD batching (SN states per register file). Correctness bar:
// for randomized job mixes over all algorithms, lengths 0..4·rate, SN ∈
// {1, 3, 6} and 1..8 worker threads, every digest must be bit-identical to
// (a) the host golden model and (b) a single-threaded ParallelSha3 dispatch
// — regardless of worker scheduling. These tests are the payload of the CI
// ThreadSanitizer job.
#include <gtest/gtest.h>

#include <tuple>

#include "kvx/common/error.hpp"
#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/engine/batch_engine.hpp"

namespace kvx::engine {
namespace {

constexpr Algo kAllAlgos[] = {Algo::kSha3_224, Algo::kSha3_256,
                              Algo::kSha3_384, Algo::kSha3_512,
                              Algo::kShake128, Algo::kShake256,
                              Algo::kKmac128,  Algo::kKmac256};

std::vector<u8> random_bytes(SplitMix64& rng, usize n) {
  std::vector<u8> out(n);
  for (u8& b : out) b = static_cast<u8>(rng.next());
  return out;
}

/// A reproducible mixed workload: random algorithm, message length in
/// [0, 4·rate], XOF/KMAC output lengths up to a few rate blocks.
std::vector<HashJob> random_job_mix(usize count, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<HashJob> jobs(count);
  for (HashJob& job : jobs) {
    job.algo = kAllAlgos[rng.below(std::size(kAllAlgos))];
    const usize rate = keccak::rate_bytes(base_function(job.algo));
    job.message = random_bytes(rng, rng.below(4 * rate + 1));
    if (fixed_digest_bytes(job.algo) == 0) {
      job.out_len = 1 + rng.below(200);
    }
    if (job.algo == Algo::kKmac128 || job.algo == Algo::kKmac256) {
      job.key = random_bytes(rng, 16 + rng.below(32));
      if (rng.below(2) == 0) job.customization = random_bytes(rng, 8);
    }
  }
  return jobs;
}

std::vector<std::vector<u8>> host_references(std::span<const HashJob> jobs) {
  std::vector<std::vector<u8>> refs(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    refs[i] = host_reference_digest(jobs[i]);
  }
  return refs;
}

/// Single-threaded accelerator reference: each job dispatched alone through
/// one ParallelSha3 (no engine, no host threads).
std::vector<std::vector<u8>> single_thread_references(
    const core::VectorKeccakConfig& accel, std::span<const HashJob> jobs) {
  core::ParallelSha3 ps(accel);
  std::vector<std::vector<u8>> refs(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    const HashJob& job = jobs[i];
    const std::vector<std::vector<u8>> msgs{job.message};
    const usize out_len = job.resolved_out_len();
    switch (job.algo) {
      case Algo::kKmac128:
      case Algo::kKmac256:
        refs[i] = ps.kmac_batch(job.algo == Algo::kKmac128 ? 128u : 256u,
                                job.key, msgs, out_len, job.customization)[0];
        break;
      default:
        refs[i] = ps.xof_batch(base_function(job.algo), msgs, out_len)[0];
        break;
    }
  }
  return refs;
}

// --- the differential matrix: SN ∈ {1,3,6} × threads ∈ {1,2,4,8} -------------

class EngineMatrixTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {
 protected:
  unsigned sn() const { return std::get<0>(GetParam()); }
  unsigned threads() const { return std::get<1>(GetParam()); }
  EngineConfig config() const {
    EngineConfig c;
    c.threads = threads();
    c.accel = {core::Arch::k64Lmul8, 5 * sn(), 24};
    return c;
  }
};

TEST_P(EngineMatrixTest, MixedJobsMatchHostAndSingleThread) {
  const auto jobs = random_job_mix(24, 1000 + sn() * 10 + threads());
  const auto outs = run_batch(config(), jobs);
  ASSERT_EQ(outs.size(), jobs.size());
  const auto host = host_references(jobs);
  const auto single = single_thread_references(config().accel, jobs);
  for (usize i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(host[i]))
        << algo_name(jobs[i].algo) << " job " << i << " vs host";
    EXPECT_EQ(to_hex(outs[i]), to_hex(single[i]))
        << algo_name(jobs[i].algo) << " job " << i << " vs 1-thread accel";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SnByThreads, EngineMatrixTest,
    ::testing::Combine(::testing::Values(1u, 3u, 6u),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& info) {
      return "SN" + std::to_string(std::get<0>(info.param)) + "_T" +
             std::to_string(std::get<1>(info.param));
    });

// --- ordering and determinism --------------------------------------------------

TEST(Engine, ResultOrderIsSubmissionOrder) {
  // Jobs with per-index-distinguishable digests: if the engine permuted
  // results, some index would disagree with its own host reference.
  const auto jobs = random_job_mix(40, 7);
  const auto host = host_references(jobs);
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  const auto outs = run_batch(cfg, jobs);
  for (usize i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(host[i])) << i;
  }
}

TEST(Engine, ThreadCountDoesNotChangeResults) {
  const auto jobs = random_job_mix(30, 8);
  EngineConfig cfg;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.threads = 1;
  const auto a = run_batch(cfg, jobs);
  cfg.threads = 8;
  const auto b = run_batch(cfg, jobs);
  EXPECT_EQ(a, b);
}

TEST(Engine, DrainThenReuseKeepsOrdering) {
  EngineConfig cfg;
  cfg.threads = 3;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine engine(cfg);
  const auto first = random_job_mix(10, 21);
  const auto second = random_job_mix(10, 22);
  engine.submit_all(first);
  const auto outs1 = engine.drain();
  engine.submit_all(second);
  const auto outs2 = engine.drain();
  EXPECT_EQ(outs1, host_references(first));
  EXPECT_EQ(outs2, host_references(second));
}

// --- edge cases -----------------------------------------------------------------

TEST(Engine, ZeroJobsDrainIsEmpty) {
  EngineConfig cfg;
  cfg.threads = 2;
  BatchHashEngine engine(cfg);
  EXPECT_TRUE(engine.drain().empty());
  EXPECT_TRUE(run_batch(cfg, {}).empty());
}

TEST(Engine, ShutdownWhileQueuedCompletesEverything) {
  // close() immediately after a burst: nothing may be dropped, results stay
  // in submission order.
  const auto jobs = random_job_mix(32, 9);
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine engine(cfg);
  engine.submit_all(jobs);
  engine.close();
  const auto outs = engine.drain();
  ASSERT_EQ(outs.size(), jobs.size());
  EXPECT_EQ(outs, host_references(jobs));
}

TEST(Engine, DestructorWithoutDrainJoinsCleanly) {
  const auto jobs = random_job_mix(16, 10);
  EngineConfig cfg;
  cfg.threads = 2;
  BatchHashEngine engine(cfg);
  engine.submit_all(jobs);
  // No drain: the destructor must close, finish queued work and join
  // without deadlock or leak (ASan/TSan verify the latter).
}

TEST(Engine, SubmitAfterCloseThrows) {
  BatchHashEngine engine({});
  engine.close();
  EXPECT_THROW((void)engine.submit({Algo::kSha3_256, {0x61}}), Error);
}

TEST(Engine, MalformedJobsRejected) {
  BatchHashEngine engine({});
  HashJob shake_no_len;
  shake_no_len.algo = Algo::kShake128;
  EXPECT_THROW((void)engine.submit(shake_no_len), Error);

  HashJob wrong_digest;
  wrong_digest.algo = Algo::kSha3_256;
  wrong_digest.out_len = 31;
  EXPECT_THROW((void)engine.submit(wrong_digest), Error);

  HashJob keyed_sha3;
  keyed_sha3.algo = Algo::kSha3_512;
  keyed_sha3.key = {1, 2, 3};
  EXPECT_THROW((void)engine.submit(keyed_sha3), Error);

  EXPECT_THROW(BatchHashEngine bad({.threads = 0}), Error);
}

TEST(Engine, LongXofSqueezeThroughEngine) {
  HashJob job;
  job.algo = Algo::kShake256;
  job.message = {'x', 'o', 'f'};
  job.out_len = 500;  // multi-block squeeze
  EngineConfig cfg;
  cfg.threads = 2;
  const auto outs = run_batch(cfg, std::vector<HashJob>{job, job});
  EXPECT_EQ(to_hex(outs[0]), to_hex(keccak::shake256(job.message, 500)));
  EXPECT_EQ(outs[0], outs[1]);
}

TEST(Engine, BoundedQueueAppliesBackpressure) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.max_queue = 2;
  BatchHashEngine engine(cfg);
  const auto jobs = random_job_mix(12, 11);
  engine.submit_all(jobs);  // blocks as needed; must not deadlock
  const auto outs = engine.drain();
  EXPECT_EQ(outs, host_references(jobs));
  EXPECT_LE(engine.stats().queue_high_water, 2u);
}

TEST(Engine, OnDeviceAbsorbShards) {
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel_options.on_device_absorb = true;
  const auto jobs = random_job_mix(12, 12);
  const auto outs = run_batch(cfg, jobs);
  EXPECT_EQ(outs, host_references(jobs));
}

// --- stats ----------------------------------------------------------------------

TEST(Engine, StatsAccountForEveryJobAndByte) {
  const auto jobs = random_job_mix(20, 13);
  u64 expect_bytes = 0;
  for (const HashJob& j : jobs) expect_bytes += j.message.size();
  EngineConfig cfg;
  cfg.threads = 3;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine engine(cfg);
  engine.submit_all(jobs);
  (void)engine.drain();
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.submitted, jobs.size());
  EXPECT_EQ(st.completed, jobs.size());
  EXPECT_EQ(st.shards.size(), 3u);
  const ShardStats totals = st.totals();
  EXPECT_EQ(totals.jobs, jobs.size());
  EXPECT_EQ(totals.bytes, expect_bytes);
  EXPECT_GT(totals.sim_cycles, 0u);
  EXPECT_GT(totals.permutations, 0u);
  EXPECT_GE(totals.dispatches, 1u);
  EXPECT_GE(st.queue_high_water, 1u);
}

// --- shard cloning (the core-level enabler) -------------------------------------

TEST(Engine, ParallelSha3CloneSharesProgramAndMatches) {
  core::ParallelSha3 original({core::Arch::k64Lmul8, 15, 24});
  const auto copy = original.clone();
  // The immutable program is shared (cheap clone), the simulator is not.
  EXPECT_EQ(original.shared_program().get(), copy->shared_program().get());
  SplitMix64 rng(14);
  std::vector<std::vector<u8>> msgs{random_bytes(rng, 100),
                                    random_bytes(rng, 300)};
  const auto a = original.hash_batch(keccak::Sha3Function::kSha3_384, msgs);
  const auto b = copy->hash_batch(keccak::Sha3Function::kSha3_384, msgs);
  EXPECT_EQ(a, b);
  EXPECT_EQ(to_hex(a[0]), to_hex(keccak::sha3_384(msgs[0])));
}

TEST(Engine, DispatchGroupMatchesRawBatch) {
  // The exposed partial-batch entry point must agree with raw_batch for an
  // equal-length lockstep group.
  core::ParallelSha3 ps({core::Arch::k64Lmul8, 15, 24});
  SplitMix64 rng(15);
  std::vector<std::vector<u8>> msgs{random_bytes(rng, 64),
                                    random_bytes(rng, 64),
                                    random_bytes(rng, 64)};
  std::vector<std::vector<u8>> outs(3);
  ps.dispatch_group(136, 0x06, msgs, outs, 32);
  const auto expect = ps.raw_batch(136, 0x06, msgs, 32);
  for (usize i = 0; i < 3; ++i) EXPECT_EQ(outs[i], expect[i]);
  EXPECT_EQ(to_hex(outs[0]), to_hex(keccak::sha3_256(msgs[0])));
}

}  // namespace
}  // namespace kvx::engine
