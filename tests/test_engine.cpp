// Differential tests for the host-parallel batch hashing engine.
//
// The engine adds a second parallelism level (worker threads) on top of the
// paper's SIMD batching (SN states per register file). Correctness bar:
// for randomized job mixes over all algorithms, lengths 0..4·rate, SN ∈
// {1, 3, 6} and 1..8 worker threads, every digest must be bit-identical to
// (a) the host golden model and (b) a single-threaded ParallelSha3 dispatch
// — regardless of worker scheduling. These tests are the payload of the CI
// ThreadSanitizer job.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>

#include "kvx/common/error.hpp"
#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/obs/metrics.hpp"

namespace kvx::engine {
namespace {

constexpr Algo kAllAlgos[] = {Algo::kSha3_224, Algo::kSha3_256,
                              Algo::kSha3_384, Algo::kSha3_512,
                              Algo::kShake128, Algo::kShake256,
                              Algo::kKmac128,  Algo::kKmac256};

std::vector<u8> random_bytes(SplitMix64& rng, usize n) {
  std::vector<u8> out(n);
  for (u8& b : out) b = static_cast<u8>(rng.next());
  return out;
}

/// A reproducible mixed workload: random algorithm, message length in
/// [0, 4·rate], XOF/KMAC output lengths up to a few rate blocks.
std::vector<HashJob> random_job_mix(usize count, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<HashJob> jobs(count);
  for (HashJob& job : jobs) {
    job.algo = kAllAlgos[rng.below(std::size(kAllAlgos))];
    const usize rate = keccak::rate_bytes(base_function(job.algo));
    job.message = random_bytes(rng, rng.below(4 * rate + 1));
    if (fixed_digest_bytes(job.algo) == 0) {
      job.out_len = 1 + rng.below(200);
    }
    if (job.algo == Algo::kKmac128 || job.algo == Algo::kKmac256) {
      job.key = random_bytes(rng, 16 + rng.below(32));
      if (rng.below(2) == 0) job.customization = random_bytes(rng, 8);
    }
  }
  return jobs;
}

std::vector<std::vector<u8>> host_references(std::span<const HashJob> jobs) {
  std::vector<std::vector<u8>> refs(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    refs[i] = host_reference_digest(jobs[i]);
  }
  return refs;
}

/// Single-threaded accelerator reference: each job dispatched alone through
/// one ParallelSha3 (no engine, no host threads).
std::vector<std::vector<u8>> single_thread_references(
    const core::VectorKeccakConfig& accel, std::span<const HashJob> jobs) {
  core::ParallelSha3 ps(accel);
  std::vector<std::vector<u8>> refs(jobs.size());
  for (usize i = 0; i < jobs.size(); ++i) {
    const HashJob& job = jobs[i];
    const std::vector<std::vector<u8>> msgs{job.message};
    const usize out_len = job.resolved_out_len();
    switch (job.algo) {
      case Algo::kKmac128:
      case Algo::kKmac256:
        refs[i] = ps.kmac_batch(job.algo == Algo::kKmac128 ? 128u : 256u,
                                job.key, msgs, out_len, job.customization)[0];
        break;
      default:
        refs[i] = ps.xof_batch(base_function(job.algo), msgs, out_len)[0];
        break;
    }
  }
  return refs;
}

// --- the differential matrix: SN ∈ {1,3,6} × threads ∈ {1,2,4,8} -------------

class EngineMatrixTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {
 protected:
  unsigned sn() const { return std::get<0>(GetParam()); }
  unsigned threads() const { return std::get<1>(GetParam()); }
  EngineConfig config() const {
    EngineConfig c;
    c.threads = threads();
    c.accel = {core::Arch::k64Lmul8, 5 * sn(), 24};
    return c;
  }
};

TEST_P(EngineMatrixTest, MixedJobsMatchHostAndSingleThread) {
  const auto jobs = random_job_mix(24, 1000 + sn() * 10 + threads());
  const auto outs = run_batch(config(), jobs);
  ASSERT_EQ(outs.size(), jobs.size());
  const auto host = host_references(jobs);
  const auto single = single_thread_references(config().accel, jobs);
  for (usize i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(host[i]))
        << algo_name(jobs[i].algo) << " job " << i << " vs host";
    EXPECT_EQ(to_hex(outs[i]), to_hex(single[i]))
        << algo_name(jobs[i].algo) << " job " << i << " vs 1-thread accel";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SnByThreads, EngineMatrixTest,
    ::testing::Combine(::testing::Values(1u, 3u, 6u),
                       ::testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& info) {
      return "SN" + std::to_string(std::get<0>(info.param)) + "_T" +
             std::to_string(std::get<1>(info.param));
    });

// --- ordering and determinism --------------------------------------------------

TEST(Engine, ResultOrderIsSubmissionOrder) {
  // Jobs with per-index-distinguishable digests: if the engine permuted
  // results, some index would disagree with its own host reference.
  const auto jobs = random_job_mix(40, 7);
  const auto host = host_references(jobs);
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  const auto outs = run_batch(cfg, jobs);
  for (usize i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(to_hex(outs[i]), to_hex(host[i])) << i;
  }
}

TEST(Engine, ThreadCountDoesNotChangeResults) {
  const auto jobs = random_job_mix(30, 8);
  EngineConfig cfg;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.threads = 1;
  const auto a = run_batch(cfg, jobs);
  cfg.threads = 8;
  const auto b = run_batch(cfg, jobs);
  EXPECT_EQ(a, b);
}

TEST(Engine, DrainThenReuseKeepsOrdering) {
  EngineConfig cfg;
  cfg.threads = 3;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine engine(cfg);
  const auto first = random_job_mix(10, 21);
  const auto second = random_job_mix(10, 22);
  engine.submit_all(first);
  const auto outs1 = engine.drain();
  engine.submit_all(second);
  const auto outs2 = engine.drain();
  EXPECT_EQ(outs1, host_references(first));
  EXPECT_EQ(outs2, host_references(second));
}

// --- edge cases -----------------------------------------------------------------

TEST(Engine, ZeroJobsDrainIsEmpty) {
  EngineConfig cfg;
  cfg.threads = 2;
  BatchHashEngine engine(cfg);
  EXPECT_TRUE(engine.drain().empty());
  EXPECT_TRUE(run_batch(cfg, {}).empty());
}

TEST(Engine, ShutdownWhileQueuedCompletesEverything) {
  // close() immediately after a burst: nothing may be dropped, results stay
  // in submission order.
  const auto jobs = random_job_mix(32, 9);
  EngineConfig cfg;
  cfg.threads = 4;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine engine(cfg);
  engine.submit_all(jobs);
  engine.close();
  const auto outs = engine.drain();
  ASSERT_EQ(outs.size(), jobs.size());
  EXPECT_EQ(outs, host_references(jobs));
}

TEST(Engine, DestructorWithoutDrainJoinsCleanly) {
  const auto jobs = random_job_mix(16, 10);
  EngineConfig cfg;
  cfg.threads = 2;
  BatchHashEngine engine(cfg);
  engine.submit_all(jobs);
  // No drain: the destructor must close, finish queued work and join
  // without deadlock or leak (ASan/TSan verify the latter).
}

TEST(Engine, SubmitAfterCloseThrows) {
  BatchHashEngine engine({});
  engine.close();
  EXPECT_THROW((void)engine.submit({Algo::kSha3_256, {0x61}}), Error);
}

TEST(Engine, MalformedJobsFailIndividually) {
  // Malformed jobs are retired as per-job failures, never exceptions: one
  // bad job in a stream must not discard its stream-mates.
  BatchHashEngine engine({});
  HashJob shake_no_len;
  shake_no_len.algo = Algo::kShake128;
  HashJob good;
  good.algo = Algo::kSha3_256;
  good.message = {'o', 'k'};
  HashJob wrong_digest;
  wrong_digest.algo = Algo::kSha3_256;
  wrong_digest.out_len = 31;
  HashJob keyed_sha3;
  keyed_sha3.algo = Algo::kSha3_512;
  keyed_sha3.key = {1, 2, 3};

  (void)engine.submit(shake_no_len);
  (void)engine.submit(good);
  (void)engine.submit(wrong_digest);
  (void)engine.submit(keyed_sha3);
  const auto results = engine.drain_results();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_NE(results[0].error.find("out_len"), std::string::npos);
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(results[1].digest, host_reference_digest(good));
  EXPECT_FALSE(results[2].ok());
  EXPECT_FALSE(results[3].ok());
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.failed, 3u);

  // The digest-only drain() still surfaces failures, as an exception.
  (void)engine.submit(shake_no_len);
  EXPECT_THROW((void)engine.drain(), Error);

  EXPECT_THROW(BatchHashEngine bad({.threads = 0}), Error);
}

TEST(Engine, ResultWaitsPerJob) {
  BatchHashEngine engine({});
  HashJob good;
  good.algo = Algo::kSha3_256;
  good.message = {'a', 'b'};
  HashJob bad;
  bad.algo = Algo::kShake128;  // missing out_len: immediate per-job failure
  const u64 s0 = engine.submit(good);
  const u64 s1 = engine.submit(bad);
  const JobResult r1 = engine.result(s1);
  EXPECT_FALSE(r1.ok());
  const JobResult r0 = engine.result(s0);
  EXPECT_TRUE(r0.ok());
  EXPECT_EQ(r0.digest, host_reference_digest(good));
  EXPECT_EQ(r0.backend, engine.stats().backend);
  EXPECT_THROW((void)engine.result(99), Error);
  (void)engine.drain_results();
  EXPECT_THROW((void)engine.result(s0), Error);  // already collected
}

// One deliberately invalid job in a 100-job stream must fail alone: the 99
// valid jobs retire with digests identical to a clean run, on every backend
// and thread count (the fail-soft acceptance test).
class FailSoftMatrixTest
    : public ::testing::TestWithParam<std::tuple<sim::ExecBackend, unsigned>> {
};

TEST_P(FailSoftMatrixTest, InvalidJobAmongHundredFailsAlone) {
  const auto [backend, threads] = GetParam();
  auto jobs = random_job_mix(100, 31);
  constexpr usize kBadIndex = 42;
  jobs[kBadIndex] = HashJob{};
  jobs[kBadIndex].algo = Algo::kShake256;  // out_len left 0: invalid
  const auto host = host_references(jobs);

  EngineConfig cfg;
  cfg.threads = threads;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = backend;
  BatchHashEngine engine(cfg);
  engine.submit_all(jobs);
  const auto results = engine.drain_results();
  ASSERT_EQ(results.size(), jobs.size());
  for (usize i = 0; i < results.size(); ++i) {
    if (i == kBadIndex) {
      EXPECT_FALSE(results[i].ok());
      EXPECT_TRUE(results[i].digest.empty());
      EXPECT_TRUE(results[i].backend.empty());
      continue;
    }
    ASSERT_TRUE(results[i].ok()) << "job " << i << ": " << results[i].error;
    EXPECT_EQ(to_hex(results[i].digest), to_hex(host[i])) << "job " << i;
    EXPECT_FALSE(results[i].backend.empty());
  }
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.submitted, 100u);
  EXPECT_EQ(st.completed, 99u);
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.totals().failures, 0u);  // failed at submit, not in a shard
}

INSTANTIATE_TEST_SUITE_P(
    BackendsByThreads, FailSoftMatrixTest,
    ::testing::Combine(::testing::Values(sim::ExecBackend::kInterpreter,
                                         sim::ExecBackend::kCompiledTrace,
                                         sim::ExecBackend::kFusedTrace),
                       ::testing::Values(1u, 8u)),
    [](const auto& info) {
      return std::string(sim::backend_name(std::get<0>(info.param))) + "_T" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Engine, LongXofSqueezeThroughEngine) {
  HashJob job;
  job.algo = Algo::kShake256;
  job.message = {'x', 'o', 'f'};
  job.out_len = 500;  // multi-block squeeze
  EngineConfig cfg;
  cfg.threads = 2;
  const auto outs = run_batch(cfg, std::vector<HashJob>{job, job});
  EXPECT_EQ(to_hex(outs[0]), to_hex(keccak::shake256(job.message, 500)));
  EXPECT_EQ(outs[0], outs[1]);
}

TEST(Engine, BoundedQueueAppliesBackpressure) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.max_queue = 2;
  BatchHashEngine engine(cfg);
  const auto jobs = random_job_mix(12, 11);
  engine.submit_all(jobs);  // blocks as needed; must not deadlock
  const auto outs = engine.drain();
  EXPECT_EQ(outs, host_references(jobs));
  EXPECT_LE(engine.stats().queue_high_water, 2u);
}

TEST(Engine, OnDeviceAbsorbShards) {
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel_options.on_device_absorb = true;
  const auto jobs = random_job_mix(12, 12);
  const auto outs = run_batch(cfg, jobs);
  EXPECT_EQ(outs, host_references(jobs));
}

// --- stats ----------------------------------------------------------------------

TEST(Engine, StatsAccountForEveryJobAndByte) {
  const auto jobs = random_job_mix(20, 13);
  u64 expect_bytes = 0;
  for (const HashJob& j : jobs) expect_bytes += j.message.size();
  EngineConfig cfg;
  cfg.threads = 3;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine engine(cfg);
  engine.submit_all(jobs);
  (void)engine.drain();
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.submitted, jobs.size());
  EXPECT_EQ(st.completed, jobs.size());
  EXPECT_EQ(st.shards.size(), 3u);
  const ShardStats totals = st.totals();
  EXPECT_EQ(totals.jobs, jobs.size());
  EXPECT_EQ(totals.bytes, expect_bytes);
  EXPECT_GT(totals.sim_cycles, 0u);
  EXPECT_GT(totals.permutations, 0u);
  EXPECT_GE(totals.dispatches, 1u);
  EXPECT_GE(st.queue_high_water, 1u);
}

TEST(Engine, FailureMetricsStayConsistent) {
  // Regression (PR 5): failed jobs used to bump the internal completed
  // count without ever touching kvx_engine_jobs_completed_total, the
  // latency histogram or the shard stats — the registry silently diverged
  // from EngineStats. The metrics are process-global, so diff them.
  auto& r = obs::MetricsRegistry::global();
  obs::Counter& submitted_c = r.counter("kvx_engine_jobs_submitted_total");
  obs::Counter& completed_c = r.counter("kvx_engine_jobs_completed_total");
  obs::Counter& failures_c = r.counter("kvx_engine_job_failures_total");
  obs::Histogram& latency_h = r.histogram("kvx_engine_job_latency_ns");
  const u64 sub0 = submitted_c.value();
  const u64 com0 = completed_c.value();
  const u64 fail0 = failures_c.value();
  const u64 lat0 = latency_h.count();

  auto jobs = random_job_mix(20, 33);
  jobs[7] = HashJob{};
  jobs[7].algo = Algo::kShake128;  // invalid: out_len missing
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  BatchHashEngine engine(cfg);
  engine.submit_all(jobs);
  (void)engine.drain_results();

  EXPECT_EQ(submitted_c.value() - sub0, 20u);
  EXPECT_EQ(completed_c.value() - com0, 19u);
  EXPECT_EQ(failures_c.value() - fail0, 1u);
  // Every retirement is latency-stamped, failed or not (dropping failures
  // would skew the percentiles toward surviving jobs).
  EXPECT_EQ(latency_h.count() - lat0, 20u);
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.latency.count, 20u);
  EXPECT_EQ(st.submitted, st.completed + st.failed);
}

TEST(Engine, QueueDepthGaugePublishesFinalDepth) {
  // Regression (PR 5, reworked in PR 6): the depth gauge used to be
  // published after dropping the queue mutex, so a stale sample could land
  // last. It is now *bound* — every read evaluates the live ring depths —
  // so staleness is impossible by construction. Hammer a sharded queue from
  // both sides with a concurrent scraper (TSan covers the ordering), then
  // check the bound gauge reports exactly zero once drained.
  obs::Gauge& gauge = obs::MetricsRegistry::global().gauge(
      "kvx_engine_queue_depth");
  ShardedJobQueue queue(2);
  const u64 token =
      gauge.bind([&queue] { return static_cast<double>(queue.depth()); });
  constexpr usize kPerProducer = 200;
  constexpr unsigned kProducers = 4;
  std::vector<std::thread> producers;
  std::vector<std::thread> consumers;
  std::atomic<bool> stop_scraper{false};
  // Scrape while the queue churns: a bound gauge must always report a value
  // the queue could truthfully have had (never negative, never garbage).
  std::thread scraper([&gauge, &stop_scraper] {
    while (!stop_scraper.load(std::memory_order_relaxed)) {
      EXPECT_GE(gauge.value(), 0.0);
    }
  });
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (usize n = 0; n < kPerProducer; ++n) {
        QueuedJob qj;
        qj.seq = p * kPerProducer + n;
        (void)queue.push(std::move(qj));
      }
    });
  }
  for (unsigned c = 0; c < 2; ++c) {
    consumers.emplace_back([&queue, c] {
      std::vector<QueuedJob> out;
      while (queue.pop_bulk(c, 7, out) > 0) {
      }
    });
  }
  for (std::thread& p : producers) p.join();
  queue.close();
  for (std::thread& c : consumers) c.join();
  stop_scraper.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  // Unbind freezes the final live value, so post-unbind scrapes stay 0.
  gauge.unbind(token);
  EXPECT_EQ(gauge.value(), 0.0);
}

// --- shard cloning (the core-level enabler) -------------------------------------

TEST(Engine, ParallelSha3CloneSharesProgramAndMatches) {
  core::ParallelSha3 original({core::Arch::k64Lmul8, 15, 24});
  const auto copy = original.clone();
  // The immutable program is shared (cheap clone), the simulator is not.
  EXPECT_EQ(original.shared_program().get(), copy->shared_program().get());
  SplitMix64 rng(14);
  std::vector<std::vector<u8>> msgs{random_bytes(rng, 100),
                                    random_bytes(rng, 300)};
  const auto a = original.hash_batch(keccak::Sha3Function::kSha3_384, msgs);
  const auto b = copy->hash_batch(keccak::Sha3Function::kSha3_384, msgs);
  EXPECT_EQ(a, b);
  EXPECT_EQ(to_hex(a[0]), to_hex(keccak::sha3_384(msgs[0])));
}

TEST(Engine, DispatchGroupMatchesRawBatch) {
  // The exposed partial-batch entry point must agree with raw_batch for an
  // equal-length lockstep group.
  core::ParallelSha3 ps({core::Arch::k64Lmul8, 15, 24});
  SplitMix64 rng(15);
  std::vector<std::vector<u8>> msgs{random_bytes(rng, 64),
                                    random_bytes(rng, 64),
                                    random_bytes(rng, 64)};
  std::vector<std::vector<u8>> outs(3);
  ps.dispatch_group(136, 0x06, msgs, outs, 32);
  const auto expect = ps.raw_batch(136, 0x06, msgs, 32);
  for (usize i = 0; i < 3; ++i) EXPECT_EQ(outs[i], expect[i]);
  EXPECT_EQ(to_hex(outs[0]), to_hex(keccak::sha3_256(msgs[0])));
}

}  // namespace
}  // namespace kvx::engine
