// Unit tests for the kvx_common utility library.
#include <gtest/gtest.h>

#include "kvx/common/bits.hpp"
#include "kvx/common/cli.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/common/strings.hpp"

namespace kvx {
namespace {

TEST(Bits, Rotl64Basics) {
  EXPECT_EQ(rotl64(1, 1), 2u);
  EXPECT_EQ(rotl64(0x8000000000000000ull, 1), 1u);
  EXPECT_EQ(rotl64(0xDEADBEEFCAFEF00Dull, 0), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(rotl64(0xDEADBEEFCAFEF00Dull, 64), 0xDEADBEEFCAFEF00Dull);
}

TEST(Bits, RotlRotrInverse) {
  SplitMix64 rng(1);
  for (int i = 0; i < 200; ++i) {
    const u64 v = rng.next();
    const unsigned n = static_cast<unsigned>(rng.below(64));
    EXPECT_EQ(rotr64(rotl64(v, n), n), v);
    EXPECT_EQ(rotl64(rotr64(v, n), n), v);
  }
}

TEST(Bits, Rotl32Basics) {
  EXPECT_EQ(rotl32(0x80000000u, 1), 1u);
  EXPECT_EQ(rotr32(1u, 1), 0x80000000u);
}

TEST(Bits, ConcatSplit) {
  const u64 v = 0x0123456789ABCDEFull;
  EXPECT_EQ(concat32(hi32(v), lo32(v)), v);
  EXPECT_EQ(hi32(v), 0x01234567u);
  EXPECT_EQ(lo32(v), 0x89ABCDEFu);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x1F, 5), -1);
  EXPECT_EQ(sign_extend(0x0F, 5), 15);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(2047, 12));
  EXPECT_TRUE(fits_signed(-2048, 12));
  EXPECT_FALSE(fits_signed(2048, 12));
  EXPECT_FALSE(fits_signed(-2049, 12));
}

TEST(Bits, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(31, 5));
  EXPECT_FALSE(fits_unsigned(32, 5));
  EXPECT_TRUE(fits_unsigned(~0ull, 64));
}

TEST(Bits, LoadStoreLe64RoundTrip) {
  std::array<u8, 8> buf{};
  store_le64(buf, 0x1122334455667788ull);
  EXPECT_EQ(buf[0], 0x88);
  EXPECT_EQ(buf[7], 0x11);
  EXPECT_EQ(load_le64(buf), 0x1122334455667788ull);
}

TEST(Bits, LoadStoreLe32RoundTrip) {
  std::array<u8, 4> buf{};
  store_le32(buf, 0xA1B2C3D4u);
  EXPECT_EQ(buf[0], 0xD4);
  EXPECT_EQ(load_le32(buf), 0xA1B2C3D4u);
}

TEST(Hex, EncodeDecode) {
  const std::vector<u8> bytes = {0x00, 0xFF, 0x12, 0xAB};
  EXPECT_EQ(to_hex(bytes), "00ff12ab");
  EXPECT_EQ(from_hex("00ff12ab"), bytes);
  EXPECT_EQ(from_hex("00FF12AB"), bytes);
  EXPECT_EQ(from_hex("0x00ff12ab"), bytes);
}

TEST(Hex, EmptyAndErrors) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
  EXPECT_THROW((void)from_hex("abc"), Error);
  EXPECT_THROW((void)from_hex("zz"), Error);
}

TEST(Hex, Hex64Format) {
  EXPECT_EQ(hex64(0x1ull), "0x0000000000000001");
  EXPECT_EQ(hex32(0xABCDu), "0x0000abcd");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  foo\t bar baz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "bar");
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("x=%d y=%s", 42, "ok"), "x=42 y=ok");
  EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Rng, Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange) {
  SplitMix64 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Error, CheckMacroThrows) {
  EXPECT_THROW(KVX_CHECK(false), Error);
  EXPECT_NO_THROW(KVX_CHECK(true));
}

TEST(Cli, ParseU64Accepts) {
  EXPECT_EQ(cli::parse_u64("0"), 0u);
  EXPECT_EQ(cli::parse_u64("42"), 42u);
  EXPECT_EQ(cli::parse_u64("18446744073709551615"), ~u64{0});
  EXPECT_EQ(cli::parse_u64("0x10"), 16u);
  EXPECT_EQ(cli::parse_u64("0XfF"), 255u);
  EXPECT_EQ(cli::parse_u64("8", 1, 16), 8u);
  EXPECT_EQ(cli::parse_u64("1", 1, 1), 1u);
}

TEST(Cli, ParseU64RejectsGarbageNegativesAndOverflow) {
  // The exact shapes std::atoi used to let through.
  EXPECT_FALSE(cli::parse_u64("-1").has_value());      // wrapped to ~4e9
  EXPECT_FALSE(cli::parse_u64("12abc").has_value());   // atoi -> 12
  EXPECT_FALSE(cli::parse_u64("abc").has_value());     // atoi -> 0
  EXPECT_FALSE(cli::parse_u64("").has_value());
  EXPECT_FALSE(cli::parse_u64(" 7").has_value());
  EXPECT_FALSE(cli::parse_u64("7 ").has_value());
  EXPECT_FALSE(cli::parse_u64("+7").has_value());
  EXPECT_FALSE(cli::parse_u64("3.5").has_value());
  EXPECT_FALSE(cli::parse_u64("0x").has_value());
  EXPECT_FALSE(cli::parse_u64("0xZZ").has_value());
  // One past u64 max must not wrap.
  EXPECT_FALSE(cli::parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(cli::parse_u64("99999999999999999999999").has_value());
}

TEST(Cli, ParseU64EnforcesRange) {
  EXPECT_FALSE(cli::parse_u64("0", 1).has_value());    // --threads 0
  EXPECT_FALSE(cli::parse_u64("17", 1, 16).has_value());
  EXPECT_FALSE(cli::parse_unsigned("4294967296").has_value());  // > u32
}

TEST(Cli, ParseF64) {
  EXPECT_DOUBLE_EQ(*cli::parse_f64("0.5", 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(*cli::parse_f64("1e-3", 0.0, 1.0), 1e-3);
  EXPECT_DOUBLE_EQ(*cli::parse_f64("0", 0.0, 1.0), 0.0);
  EXPECT_FALSE(cli::parse_f64("1.5", 0.0, 1.0).has_value());
  EXPECT_FALSE(cli::parse_f64("-0.1", 0.0, 1.0).has_value());
  EXPECT_FALSE(cli::parse_f64("nan", 0.0, 1.0).has_value());
  EXPECT_FALSE(cli::parse_f64("inf", 0.0, 1.0).has_value());
  EXPECT_FALSE(cli::parse_f64("0.5x", 0.0, 1.0).has_value());
  EXPECT_FALSE(cli::parse_f64("", 0.0, 1.0).has_value());
}

}  // namespace
}  // namespace kvx
