// Tests for the Keccak duplex construction, including an authenticated
// encryption round-trip built on it and a duplex-driven PRNG.
#include <gtest/gtest.h>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/keccak/duplex.hpp"
#include "kvx/keccak/turboshake.hpp"

namespace kvx::keccak {
namespace {

std::vector<u8> bytes_of(std::string_view s) { return {s.begin(), s.end()}; }

TEST(Duplex, Deterministic) {
  Duplex a(136), b(136);
  EXPECT_EQ(a.duplexing(bytes_of("x"), 32), b.duplexing(bytes_of("x"), 32));
  EXPECT_EQ(a.duplexing(bytes_of("y"), 32), b.duplexing(bytes_of("y"), 32));
}

TEST(Duplex, ChainsState) {
  // The same call after different histories must produce different output.
  Duplex a(136), b(136);
  (void)a.duplexing(bytes_of("first-a"), 16);
  (void)b.duplexing(bytes_of("first-b"), 16);
  EXPECT_NE(a.duplexing(bytes_of("same"), 32),
            b.duplexing(bytes_of("same"), 32));
}

TEST(Duplex, EmptyInputAdvancesState) {
  Duplex d(136);
  const auto first = d.duplexing({}, 32);
  const auto second = d.duplexing({}, 32);
  EXPECT_NE(first, second);
  EXPECT_EQ(d.permutation_count(), 2u);
}

TEST(Duplex, PaddingDistinguishesTrailingZeros) {
  // pad10*1 framing: "ab" and "ab\0" must diverge.
  Duplex a(136), b(136);
  const std::vector<u8> x = {'a', 'b'};
  const std::vector<u8> y = {'a', 'b', 0};
  EXPECT_NE(a.duplexing(x, 32), b.duplexing(y, 32));
}

TEST(Duplex, InputAndOutputLimitsEnforced) {
  Duplex d(136);
  EXPECT_THROW((void)d.duplexing(std::vector<u8>(136, 0), 16), Error);
  EXPECT_NO_THROW((void)d.duplexing(std::vector<u8>(135, 0), 16));
  EXPECT_THROW((void)d.duplexing({}, 137), Error);
  EXPECT_THROW(Duplex bad(1), Error);
  EXPECT_THROW(Duplex bad(200), Error);
}

TEST(Duplex, ResetRestoresInitialState) {
  Duplex d(168);
  const auto first = d.duplexing(bytes_of("seed"), 32);
  (void)d.duplexing(bytes_of("more"), 32);
  d.reset();
  EXPECT_EQ(d.duplexing(bytes_of("seed"), 32), first);
}

TEST(Duplex, CustomPermutationBackend) {
  // Duplex over the 12-round TurboSHAKE permutation.
  Duplex fast(168, [](State& s) { permute_12(s); });
  Duplex full(168);
  EXPECT_NE(fast.duplexing(bytes_of("m"), 32), full.duplexing(bytes_of("m"), 32));
}

// --- applications on top of the duplex --------------------------------------

/// Minimal duplex-based AEAD (SpongeWrap-style, demonstration only):
/// absorb nonce, then for each block: keystream = duplex output, absorb the
/// ciphertext to bind it; tag = final duplexing output.
struct MiniWrap {
  Duplex d{136};

  std::pair<std::vector<u8>, std::vector<u8>> seal(std::span<const u8> nonce,
                                                   std::span<const u8> msg) {
    (void)d.duplexing(nonce, 0);
    std::vector<u8> ct(msg.size());
    usize pos = 0;
    while (pos < msg.size()) {
      const usize n = std::min<usize>(64, msg.size() - pos);
      const auto ks = d.duplexing({}, n);
      for (usize i = 0; i < n; ++i) ct[pos + i] = msg[pos + i] ^ ks[i];
      (void)d.duplexing(std::span<const u8>(ct).subspan(pos, n), 0);
      pos += n;
    }
    return {ct, d.duplexing({}, 16)};
  }

  std::pair<std::vector<u8>, std::vector<u8>> open(std::span<const u8> nonce,
                                                   std::span<const u8> ct) {
    (void)d.duplexing(nonce, 0);
    std::vector<u8> pt(ct.size());
    usize pos = 0;
    while (pos < ct.size()) {
      const usize n = std::min<usize>(64, ct.size() - pos);
      const auto ks = d.duplexing({}, n);
      for (usize i = 0; i < n; ++i) pt[pos + i] = ct[pos + i] ^ ks[i];
      (void)d.duplexing(ct.subspan(pos, n), 0);
      pos += n;
    }
    return {pt, d.duplexing({}, 16)};
  }
};

TEST(DuplexAead, SealOpenRoundTrip) {
  SplitMix64 rng(4);
  std::vector<u8> msg(200);
  for (u8& b : msg) b = static_cast<u8>(rng.next());
  const std::vector<u8> nonce = {1, 2, 3, 4};

  MiniWrap sealer;
  const auto [ct, tag] = sealer.seal(nonce, msg);
  EXPECT_NE(ct, msg);

  MiniWrap opener;
  const auto [pt, tag2] = opener.open(nonce, ct);
  EXPECT_EQ(pt, msg);
  EXPECT_EQ(tag, tag2);
}

TEST(DuplexAead, TamperBreaksTag) {
  const std::vector<u8> nonce = {9};
  const auto msg = bytes_of("attack at dawn");
  MiniWrap sealer;
  auto [ct, tag] = sealer.seal(nonce, msg);
  ct[3] ^= 0x80;
  MiniWrap opener;
  const auto [pt, tag2] = opener.open(nonce, ct);
  EXPECT_NE(tag, tag2);  // corrupted ciphertext must change the tag
  (void)pt;
}

TEST(DuplexPrng, ReseedableStream) {
  // A duplex PRNG: feed entropy, squeeze; feeding distinct entropy forks
  // the stream.
  Duplex a(168), b(168);
  (void)a.duplexing(bytes_of("entropy-1"), 0);
  (void)b.duplexing(bytes_of("entropy-1"), 0);
  EXPECT_EQ(a.duplexing({}, 64), b.duplexing({}, 64));
  (void)a.duplexing(bytes_of("reseed-a"), 0);
  (void)b.duplexing(bytes_of("reseed-b"), 0);
  EXPECT_NE(a.duplexing({}, 64), b.duplexing({}, 64));
}

}  // namespace
}  // namespace kvx::keccak
