// Tests for the kvx_net service layer: wire protocol total-decoding,
// frame reassembly (including slow-loris byte-at-a-time delivery and
// oversized-frame rejection), streaming XOF sessions, the backpressure
// governor, and — on Linux — the full HashServer event loop over real
// sockets: hash round-trips verified against the host golden model,
// per-connection session lifecycle, the HTTP admin plane and
// backpressure engage/release against a tiny engine queue.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "kvx/common/bits.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/engine/job.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/net/backpressure.hpp"
#include "kvx/net/frame.hpp"
#include "kvx/net/protocol.hpp"
#include "kvx/net/session.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "kvx/net/server.hpp"
#endif

namespace kvx::net {
namespace {

std::vector<u8> bytes(std::initializer_list<int> vals) {
  std::vector<u8> out;
  for (int v : vals) out.push_back(static_cast<u8>(v));
  return out;
}

// --- Framing ----------------------------------------------------------------

TEST(Frame, RoundTripMultipleFrames) {
  std::vector<u8> wire;
  const std::vector<u8> a = bytes({1, 2, 3});
  const std::vector<u8> b = {};
  const std::vector<u8> c = bytes({0xFF});
  append_frame(wire, a);
  append_frame(wire, b);
  append_frame(wire, c);

  FrameReader reader;
  ASSERT_TRUE(reader.feed(wire));
  std::vector<u8> out;
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out, a);
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out, b);
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out, c);
  EXPECT_FALSE(reader.next(out));
  EXPECT_FALSE(reader.poisoned());
}

TEST(Frame, SlowLorisByteAtATime) {
  // A peer trickling one byte per read event must still produce the exact
  // frame — and never a partial one.
  std::vector<u8> wire;
  std::vector<u8> payload(300);
  SplitMix64 rng(1);
  for (u8& b : payload) b = static_cast<u8>(rng.next());
  append_frame(wire, payload);

  FrameReader reader;
  std::vector<u8> out;
  for (usize i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(reader.feed(std::span<const u8>(&wire[i], 1)));
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(reader.has_frame()) << "frame complete too early at " << i;
    }
  }
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out, payload);
}

TEST(Frame, OversizedDeclaredLengthPoisonsBeforeBuffering) {
  FrameReader reader(1024);
  // Header declares 1 MiB against a 1 KiB cap: rejected from the header
  // alone, payload never buffered.
  const std::vector<u8> header = bytes({0x00, 0x00, 0x10, 0x00});
  EXPECT_FALSE(reader.feed(header));
  EXPECT_TRUE(reader.poisoned());
  EXPECT_FALSE(reader.error().empty());
  EXPECT_EQ(reader.buffered(), 0u);
  // Poisoned readers stay dead.
  EXPECT_FALSE(reader.feed(bytes({1})));
  std::vector<u8> out;
  EXPECT_FALSE(reader.next(out));
}

TEST(Frame, OversizedSecondFrameDetectedAfterFirst) {
  FrameReader reader(64);
  std::vector<u8> wire;
  append_frame(wire, bytes({1, 2}));
  // Second header: 0xFFFFFFFF bytes.
  wire.insert(wire.end(), {0xFF, 0xFF, 0xFF, 0xFF});
  // The valid first frame is still delivered; the poison lands when the
  // bad header reaches the front of the buffer.
  ASSERT_TRUE(reader.feed(wire));
  std::vector<u8> out;
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out, bytes({1, 2}));
  EXPECT_TRUE(reader.poisoned());
  EXPECT_FALSE(reader.next(out));
  EXPECT_FALSE(reader.feed(bytes({0})));
}

TEST(Frame, MaxSizedPayloadAccepted) {
  FrameReader reader(128);
  std::vector<u8> wire;
  const std::vector<u8> payload(128, 0xAB);
  append_frame(wire, payload);
  ASSERT_TRUE(reader.feed(wire));
  std::vector<u8> out;
  ASSERT_TRUE(reader.next(out));
  EXPECT_EQ(out, payload);
}

// --- Protocol ---------------------------------------------------------------

TEST(Protocol, HashRequestRoundTrip) {
  Request req;
  req.id = 0x0123456789ABCDEFull;
  req.op = Opcode::kHash;
  req.algo = engine::Algo::kKmac256;
  req.out_len = 48;
  req.key = bytes({1, 2, 3});
  req.customization = bytes({9});
  req.message = bytes({7, 7, 7, 7});

  std::string error;
  const auto decoded = decode_request(encode_request(req), error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->id, req.id);
  EXPECT_EQ(decoded->op, Opcode::kHash);
  EXPECT_EQ(decoded->algo, engine::Algo::kKmac256);
  EXPECT_EQ(decoded->out_len, 48u);
  EXPECT_EQ(decoded->key, req.key);
  EXPECT_EQ(decoded->customization, req.customization);
  EXPECT_EQ(decoded->message, req.message);
}

TEST(Protocol, SessionRequestsRoundTrip) {
  std::string error;
  Request open;
  open.id = 1;
  open.op = Opcode::kOpenSession;
  open.algo = engine::Algo::kShake128;
  open.message = bytes({5, 6});
  auto d = decode_request(encode_request(open), error);
  ASSERT_TRUE(d.has_value()) << error;
  EXPECT_EQ(d->op, Opcode::kOpenSession);
  EXPECT_EQ(d->message, open.message);

  Request sq;
  sq.id = 2;
  sq.op = Opcode::kSqueeze;
  sq.session_id = 77;
  sq.squeeze_len = 64;
  d = decode_request(encode_request(sq), error);
  ASSERT_TRUE(d.has_value()) << error;
  EXPECT_EQ(d->session_id, 77u);
  EXPECT_EQ(d->squeeze_len, 64u);

  Request close;
  close.id = 3;
  close.op = Opcode::kCloseSession;
  close.session_id = 77;
  d = decode_request(encode_request(close), error);
  ASSERT_TRUE(d.has_value()) << error;
  EXPECT_EQ(d->op, Opcode::kCloseSession);

  Request ping;
  ping.id = 4;
  ping.op = Opcode::kPing;
  d = decode_request(encode_request(ping), error);
  ASSERT_TRUE(d.has_value()) << error;
  EXPECT_EQ(d->op, Opcode::kPing);
}

TEST(Protocol, DecodeRejectsMalformedRequests) {
  std::string error;
  // Shorter than the 9-byte header.
  EXPECT_FALSE(decode_request({}, error).has_value());
  EXPECT_FALSE(decode_request(bytes({1, 2, 3}), error).has_value());
  // Unknown opcode (0 and 200).
  EXPECT_FALSE(
      decode_request(bytes({0, 0, 0, 0, 0, 0, 0, 0, 0}), error).has_value());
  EXPECT_FALSE(
      decode_request(bytes({0, 0, 0, 0, 0, 0, 0, 0, 200}), error)
          .has_value());
  // HASH with a truncated header.
  EXPECT_FALSE(
      decode_request(bytes({0, 0, 0, 0, 0, 0, 0, 0, 1, 1}), error)
          .has_value());
  // HASH with an unknown algorithm (99).
  {
    Request req;
    req.op = Opcode::kHash;
    std::vector<u8> enc = encode_request(req);
    enc[9] = 99;
    EXPECT_FALSE(decode_request(enc, error).has_value());
  }
  // HASH whose declared key length overruns the payload.
  {
    Request req;
    req.op = Opcode::kHash;
    req.message = bytes({1, 2, 3});
    std::vector<u8> enc = encode_request(req);
    enc[14] = 0xFF;  // key_len low byte: claims 255 bytes, only 3 remain
    EXPECT_FALSE(decode_request(enc, error).has_value());
    EXPECT_FALSE(error.empty());
  }
  // HASH with an absurd out_len.
  {
    Request req;
    req.op = Opcode::kHash;
    req.algo = engine::Algo::kShake128;
    req.out_len = static_cast<u32>(kMaxOutputLen) + 1;
    EXPECT_FALSE(decode_request(encode_request(req), error).has_value());
  }
  // OPEN_SESSION on a fixed-output algorithm.
  {
    Request req;
    req.op = Opcode::kOpenSession;
    req.algo = engine::Algo::kSha3_256;
    EXPECT_FALSE(decode_request(encode_request(req), error).has_value());
  }
  // SQUEEZE of zero bytes, and PING with trailing garbage.
  {
    Request req;
    req.op = Opcode::kSqueeze;
    req.session_id = 1;
    req.squeeze_len = 0;
    EXPECT_FALSE(decode_request(encode_request(req), error).has_value());
  }
  {
    Request req;
    req.op = Opcode::kPing;
    std::vector<u8> enc = encode_request(req);
    enc.push_back(0);
    EXPECT_FALSE(decode_request(enc, error).has_value());
  }
}

TEST(Protocol, DecodeIsTotalOnRandomBytes) {
  // Arbitrary payloads must decode or be diagnosed — never crash, never
  // read out of bounds (ASan/TSan matrix runs this too).
  SplitMix64 rng(42);
  std::string error;
  for (int i = 0; i < 2000; ++i) {
    std::vector<u8> payload(rng.below(64));
    for (u8& b : payload) b = static_cast<u8>(rng.next());
    (void)decode_request(payload, error);
    (void)decode_response(payload, error);
  }
}

TEST(Protocol, ResponseRoundTrip) {
  std::string error;
  const std::vector<u8> digest = bytes({0xAA, 0xBB});
  auto ok = decode_response(encode_response_ok(7, digest), error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_TRUE(ok->ok());
  EXPECT_EQ(ok->id, 7u);
  EXPECT_EQ(ok->body, digest);

  auto err = decode_response(
      encode_response_error(8, Status::kFailed, "sim fault"), error);
  ASSERT_TRUE(err.has_value()) << error;
  EXPECT_EQ(err->status, Status::kFailed);
  EXPECT_EQ(err->error_text(), "sim fault");

  // Unknown status byte.
  std::vector<u8> bad = encode_response_ok(9, {});
  bad[8] = 99;
  EXPECT_FALSE(decode_response(bad, error).has_value());
}

TEST(Protocol, RenderFailureIncludesDemotionPath) {
  engine::JobResult r;
  r.error = "dispatch failed";
  r.demotion_path.push_back({"jit", "emit rejected", false});
  r.demotion_path.push_back({"trace", "injected parity flip", true});
  r.demotion_path.push_back({"interpreter", "", false});
  const std::string text = render_failure(r);
  EXPECT_NE(text.find("dispatch failed"), std::string::npos);
  EXPECT_NE(text.find("jit (emit rejected)"), std::string::npos);
  EXPECT_NE(text.find("trace (injected: injected parity flip)"),
            std::string::npos);
  EXPECT_NE(text.find("-> interpreter"), std::string::npos);
}

// --- Sessions ---------------------------------------------------------------

TEST(Session, SqueezeMatchesDirectXofAcrossCutPoints) {
  SessionTable table;
  const std::vector<u8> message = bytes({1, 2, 3, 4, 5});
  std::string error;
  const u64 id =
      table.open(1, keccak::Sha3Function::kShake128, message, error);
  ASSERT_NE(id, 0u) << error;

  // Squeeze in ragged chunks; the concatenation must equal one straight
  // squeeze of the same total — the sponge's cut-point invariance.
  std::vector<u8> streamed;
  for (const usize n : {1u, 7u, 64u, 200u, 3u}) {
    ASSERT_TRUE(table.squeeze(1, id, n, streamed, error)) << error;
  }
  keccak::Xof direct(keccak::Sha3Function::kShake128);
  direct.absorb(message);
  EXPECT_EQ(streamed, direct.squeeze(streamed.size()));
  EXPECT_TRUE(table.close(1, id, error));
  EXPECT_EQ(table.size(), 0u);
}

TEST(Session, LifecycleAndOwnership) {
  SessionTable table(2);
  std::string error;
  std::vector<u8> out;
  // Unknown id.
  EXPECT_FALSE(table.squeeze(1, 99, 8, out, error));
  EXPECT_FALSE(table.close(1, 99, error));

  const u64 a = table.open(1, keccak::Sha3Function::kShake256, {}, error);
  ASSERT_NE(a, 0u);
  // Another connection cannot see it (same diagnostic as unknown).
  EXPECT_FALSE(table.squeeze(2, a, 8, out, error));
  EXPECT_FALSE(table.close(2, a, error));
  EXPECT_EQ(table.size(), 1u);

  // Capacity cap.
  const u64 b = table.open(2, keccak::Sha3Function::kShake128, {}, error);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(table.open(3, keccak::Sha3Function::kShake128, {}, error), 0u);
  EXPECT_FALSE(error.empty());

  // Connection teardown drops only that connection's sessions.
  EXPECT_EQ(table.drop_owner(1), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.squeeze(2, b, 4, out, error));
  // Closing twice fails the second time.
  EXPECT_TRUE(table.close(2, b, error));
  EXPECT_FALSE(table.close(2, b, error));
}

// --- Backpressure governor --------------------------------------------------

TEST(Backpressure, HysteresisEngageRelease) {
  BackpressureGovernor gov(8, 4);
  EXPECT_FALSE(gov.engaged());
  EXPECT_FALSE(gov.update(7));   // below high: nothing
  EXPECT_TRUE(gov.update(8));    // hits high: engage
  EXPECT_TRUE(gov.engaged());
  EXPECT_FALSE(gov.update(100));  // already engaged: no transition
  EXPECT_FALSE(gov.update(5));    // above low: stays engaged (hysteresis)
  EXPECT_TRUE(gov.update(4));     // reaches low: release
  EXPECT_FALSE(gov.engaged());
  EXPECT_FALSE(gov.update(6));    // between the marks while idle: nothing
  EXPECT_TRUE(gov.update(9));
  EXPECT_EQ(gov.engagements(), 2u);
}

TEST(Backpressure, RejectsDegenerateWatermarks) {
  EXPECT_THROW(BackpressureGovernor(4, 4), Error);
  EXPECT_THROW(BackpressureGovernor(4, 9), Error);
}

#if defined(__linux__)

// --- End-to-end over real sockets -------------------------------------------

/// Minimal blocking client for the framed protocol.
class TestClient {
 public:
  void connect_to(u16 port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    const int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr), 0);
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_raw(std::span<const u8> data) {
    usize sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<usize>(n);
    }
  }

  void send_request(const Request& req) {
    std::vector<u8> wire;
    append_frame(wire, encode_request(req));
    send_raw(wire);
  }

  /// Blocks for the next response; nullopt when the server closed.
  std::optional<Response> recv_response() {
    std::vector<u8> payload;
    while (!reader_.next(payload)) {
      u8 buf[16 * 1024];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) return std::nullopt;
      if (!reader_.feed(std::span<const u8>(buf, static_cast<usize>(n)))) {
        return std::nullopt;
      }
    }
    std::string error;
    auto resp = decode_response(payload, error);
    EXPECT_TRUE(resp.has_value()) << error;
    return resp;
  }

  /// True when the server has closed the connection (EOF on read).
  bool server_closed() {
    u8 buf[64];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    return n <= 0;
  }

  std::string http_get(const std::string& path) {
    const std::string req = "GET " + path + " HTTP/1.1\r\n\r\n";
    send_raw(std::span<const u8>(
        reinterpret_cast<const u8*>(req.data()), req.size()));
    std::string out;
    for (;;) {
      char buf[16 * 1024];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) break;  // Connection: close terminates the response
      out.append(buf, static_cast<usize>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

class ServerTest : public ::testing::Test {
 protected:
  void start(ServerConfig cfg) {
    cfg.port = 0;  // ephemeral
    server_ = std::make_unique<HashServer>(cfg);
    loop_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_) {
      server_->stop();
      loop_.join();
      server_.reset();
    }
  }

  static ServerConfig small_config() {
    ServerConfig cfg;
    cfg.engine.threads = 2;
    cfg.engine.accel = {core::Arch::k64Lmul8, 15, 24};
    cfg.engine.max_queue = 256;
    return cfg;
  }

  std::unique_ptr<HashServer> server_;
  std::thread loop_;
};

TEST_F(ServerTest, HashRoundTripsVerifyAgainstGoldenModel) {
  start(small_config());
  TestClient client;
  client.connect_to(server_->port());

  SplitMix64 rng(7);
  std::vector<engine::HashJob> jobs(24);
  for (usize i = 0; i < jobs.size(); ++i) {
    engine::HashJob& job = jobs[i];
    job.message.resize(rng.below(300));
    for (u8& b : job.message) b = static_cast<u8>(rng.next());
    if (i % 3 == 0) {
      job.algo = engine::Algo::kSha3_512;
    } else if (i % 3 == 1) {
      job.algo = engine::Algo::kShake256;
      job.out_len = 40;
    } else {
      job.algo = engine::Algo::kKmac128;
      job.out_len = 32;
      job.key.assign(16, 0x11);
      job.customization = bytes({0x42});
    }
    Request req;
    req.id = 100 + i;
    req.op = Opcode::kHash;
    req.algo = job.algo;
    req.out_len = static_cast<u32>(job.out_len);
    req.key = job.key;
    req.customization = job.customization;
    req.message = job.message;
    client.send_request(req);
  }
  // Responses arrive in engine retirement order == submission order here
  // (single connection, ordered drains).
  for (usize i = 0; i < jobs.size(); ++i) {
    const auto resp = client.recv_response();
    ASSERT_TRUE(resp.has_value());
    ASSERT_TRUE(resp->ok()) << resp->error_text();
    EXPECT_EQ(resp->id, 100 + i);
    EXPECT_EQ(resp->body, engine::host_reference_digest(jobs[i]));
  }
}

TEST_F(ServerTest, MalformedRequestsAnswerBadRequestAndKeepTheConnection) {
  start(small_config());
  TestClient client;
  client.connect_to(server_->port());

  // Well-framed garbage payload: 9 bytes, unknown opcode 0xEE.
  std::vector<u8> wire;
  append_frame(wire, bytes({1, 0, 0, 0, 0, 0, 0, 0, 0xEE}));
  client.send_raw(wire);
  auto resp = client.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, Status::kBadRequest);
  EXPECT_EQ(resp->id, 1u);  // best-effort id echo
  EXPECT_FALSE(resp->error_text().empty());

  // A malformed job the ENGINE rejects (SHAKE with out_len 0) comes back
  // kFailed — per-job fail-soft, not a dropped connection.
  Request bad;
  bad.id = 2;
  bad.op = Opcode::kHash;
  bad.algo = engine::Algo::kShake128;
  bad.out_len = 0;
  client.send_request(bad);
  resp = client.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, Status::kFailed);

  // The connection survived both: a PING still round-trips.
  Request ping;
  ping.id = 3;
  ping.op = Opcode::kPing;
  client.send_request(ping);
  resp = client.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());
}

TEST_F(ServerTest, OversizedFrameDropsTheConnection) {
  start(small_config());
  TestClient client;
  client.connect_to(server_->port());
  // Header declaring a 16 MiB payload (over the 1 MiB cap).
  client.send_raw(bytes({0x00, 0x00, 0x00, 0x01}));
  EXPECT_TRUE(client.server_closed());
}

TEST_F(ServerTest, SlowLorisPartialFramesStillComplete) {
  start(small_config());
  TestClient client;
  client.connect_to(server_->port());
  Request ping;
  ping.id = 9;
  ping.op = Opcode::kPing;
  std::vector<u8> wire;
  append_frame(wire, encode_request(ping));
  for (const u8 b : wire) {  // one byte per segment
    client.send_raw(std::span<const u8>(&b, 1));
  }
  const auto resp = client.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());
  EXPECT_EQ(resp->id, 9u);
}

TEST_F(ServerTest, StreamingSessionMatchesLocalMirror) {
  start(small_config());
  TestClient client;
  client.connect_to(server_->port());

  const std::vector<u8> message = bytes({10, 20, 30, 40});
  Request open;
  open.id = 1;
  open.op = Opcode::kOpenSession;
  open.algo = engine::Algo::kShake256;
  open.message = message;
  client.send_request(open);
  auto resp = client.recv_response();
  ASSERT_TRUE(resp.has_value());
  ASSERT_TRUE(resp->ok()) << resp->error_text();
  ASSERT_EQ(resp->body.size(), 8u);
  const u64 sid = load_le64(std::span<const u8, 8>(resp->body.data(), 8));

  keccak::Xof mirror(keccak::Sha3Function::kShake256);
  mirror.absorb(message);
  // XOF output streams across REQUESTS, not just reads: three squeezes
  // continue the same sponge.
  for (const u32 n : {17u, 136u, 1u}) {
    Request sq;
    sq.id = 50 + n;
    sq.op = Opcode::kSqueeze;
    sq.session_id = sid;
    sq.squeeze_len = n;
    client.send_request(sq);
    resp = client.recv_response();
    ASSERT_TRUE(resp.has_value());
    ASSERT_TRUE(resp->ok()) << resp->error_text();
    EXPECT_EQ(resp->body, mirror.squeeze(n));
  }

  Request close;
  close.id = 90;
  close.op = Opcode::kCloseSession;
  close.session_id = sid;
  client.send_request(close);
  resp = client.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok());

  // Squeezing the closed session is a BAD_REQUEST, not a crash.
  Request sq;
  sq.id = 91;
  sq.op = Opcode::kSqueeze;
  sq.session_id = sid;
  sq.squeeze_len = 8;
  client.send_request(sq);
  resp = client.recv_response();
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, Status::kBadRequest);
}

TEST_F(ServerTest, HttpAdminPlaneServesMetricsAndHealth) {
  start(small_config());
  {
    TestClient curl;
    curl.connect_to(server_->port());
    const std::string metrics = curl.http_get("/metrics");
    EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("kvx_server_connections"), std::string::npos);
    EXPECT_NE(metrics.find("kvx_server_backpressure_events_total"),
              std::string::npos);
  }
  {
    TestClient curl;
    curl.connect_to(server_->port());
    const std::string health = curl.http_get("/healthz");
    EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(health.find("ok submitted="), std::string::npos);
  }
  {
    TestClient curl;
    curl.connect_to(server_->port());
    const std::string missing = curl.http_get("/nope");
    EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
  }
}

TEST_F(ServerTest, BackpressureEngagesAndReleasesUnderBurst) {
  // One slow worker shard and a tiny queue: a pipelined burst MUST drive
  // the queue to the high watermark (engage), and completion of every
  // response proves the governor released and resumed reading.
  ServerConfig cfg;
  cfg.engine.threads = 1;
  cfg.engine.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.engine.max_queue = 8;  // high watermark derives to 6, low to 3
  start(cfg);

  TestClient client;
  client.connect_to(server_->port());
  const usize kJobs = 64;
  std::vector<engine::HashJob> jobs(kJobs);
  SplitMix64 rng(11);
  for (usize i = 0; i < kJobs; ++i) {
    jobs[i].algo = engine::Algo::kSha3_256;
    jobs[i].message.resize(500);
    for (u8& b : jobs[i].message) b = static_cast<u8>(rng.next());
    Request req;
    req.id = i;
    req.op = Opcode::kHash;
    req.algo = jobs[i].algo;
    req.message = jobs[i].message;
    client.send_request(req);
  }
  for (usize i = 0; i < kJobs; ++i) {
    const auto resp = client.recv_response();
    ASSERT_TRUE(resp.has_value());
    ASSERT_TRUE(resp->ok()) << resp->error_text();
    EXPECT_EQ(resp->id, i);
    EXPECT_EQ(resp->body, engine::host_reference_digest(jobs[i]));
  }

  // Quiesce the loop, then read its counters safely.
  server_->stop();
  loop_.join();
  EXPECT_GT(server_->counters().backpressure_engagements, 0u);
  EXPECT_EQ(server_->counters().requests, kJobs);
  const engine::EngineStats st = server_->engine().stats();
  EXPECT_EQ(st.submitted, st.completed + st.failed);
  server_.reset();
}

#endif  // __linux__

}  // namespace
}  // namespace kvx::net
