// Tests for the 32-bit lane representations (bit interleaving vs hi/lo).
#include <gtest/gtest.h>

#include "kvx/common/bits.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/keccak/interleave.hpp"
#include "kvx/keccak/permutation.hpp"

namespace kvx::keccak {
namespace {

TEST(Interleave, KnownPattern) {
  // Alternating bits: 0b...0101 has all even bits set.
  const Interleaved v = interleave(0x5555555555555555ull);
  EXPECT_EQ(v.even, 0xFFFFFFFFu);
  EXPECT_EQ(v.odd, 0u);
  const Interleaved w = interleave(0xAAAAAAAAAAAAAAAAull);
  EXPECT_EQ(w.even, 0u);
  EXPECT_EQ(w.odd, 0xFFFFFFFFu);
}

TEST(Interleave, SingleBits) {
  EXPECT_EQ(interleave(1ull).even, 1u);
  EXPECT_EQ(interleave(2ull).odd, 1u);
  EXPECT_EQ(interleave(4ull).even, 2u);
}

TEST(Interleave, RoundTrip) {
  SplitMix64 rng(100);
  for (int i = 0; i < 500; ++i) {
    const u64 v = rng.next();
    EXPECT_EQ(deinterleave(interleave(v)), v);
  }
}

class InterleaveRotTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(InterleaveRotTest, MatchesPlainRotation) {
  const unsigned n = GetParam();
  SplitMix64 rng(n * 7 + 1);
  for (int i = 0; i < 50; ++i) {
    const u64 v = rng.next();
    const Interleaved rotated = rotl_interleaved(interleave(v), n);
    EXPECT_EQ(deinterleave(rotated), rotl64(v, n)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOffsets, InterleaveRotTest,
                         ::testing::Range(0u, 64u));

TEST(HiLo, RoundTrip) {
  SplitMix64 rng(200);
  for (int i = 0; i < 100; ++i) {
    const u64 v = rng.next();
    EXPECT_EQ(join_hilo(split_hilo(v)), v);
  }
}

class HiLoRotTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(HiLoRotTest, MatchesPlainRotation) {
  const unsigned n = GetParam();
  SplitMix64 rng(n * 13 + 5);
  for (int i = 0; i < 50; ++i) {
    const u64 v = rng.next();
    EXPECT_EQ(join_hilo(rotl_hilo(split_hilo(v), n)), rotl64(v, n));
  }
}

INSTANTIATE_TEST_SUITE_P(AllOffsets, HiLoRotTest, ::testing::Range(0u, 64u));

TEST(RotCost, InterleavedCheaperForGenericOffsets) {
  // The paper's §3.2 trade-off: interleaved rotations cost two 32-bit
  // rotates; a software hi/lo rotation needs shift/or sequences.
  unsigned hilo_total = 0, inter_total = 0;
  const auto& offsets = rho_offsets();
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned x = 0; x < 5; ++x) {
      hilo_total += hilo_rot_op_count(offsets[y][x]);
      inter_total += interleaved_rot_op_count(offsets[y][x]);
    }
  }
  EXPECT_GT(hilo_total, inter_total);
}

}  // namespace
}  // namespace kvx::keccak
