// Tests for the on-device sponge absorb: the accelerator-resident
// absorb+permute loop must be byte-identical to the host sponge, and its
// per-block overhead must be small (the paper's §4.1 efficiency claim).
#include <gtest/gtest.h>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/on_device_sponge.hpp"
#include "kvx/keccak/permutation.hpp"

namespace kvx::core {
namespace {

using keccak::State;

/// Host reference: absorb rate-padded bytes into a fresh state.
State host_absorb(std::span<const u8> padded, usize rate) {
  State s;
  for (usize off = 0; off < padded.size(); off += rate) {
    std::vector<u8> block(padded.begin() + static_cast<std::ptrdiff_t>(off),
                          padded.begin() + static_cast<std::ptrdiff_t>(off + rate));
    s.xor_bytes(block);
    keccak::permute(s);
  }
  return s;
}

std::vector<std::vector<u8>> random_padded(usize n, usize blocks, usize rate,
                                           u64 seed) {
  SplitMix64 rng(seed);
  std::vector<std::vector<u8>> msgs(n);
  for (auto& m : msgs) {
    m.resize(blocks * rate);
    for (u8& b : m) b = static_cast<u8>(rng.next());
  }
  return msgs;
}

class OnDeviceSpongeTest : public ::testing::TestWithParam<Arch> {};

TEST_P(OnDeviceSpongeTest, SingleBlockMatchesHost) {
  OnDeviceSponge sponge(GetParam(), 5, 168);
  const auto msgs = random_padded(1, 1, 168, 1);
  const auto states = sponge.absorb(msgs);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0], host_absorb(msgs[0], 168));
}

TEST_P(OnDeviceSpongeTest, MultiBlockMultiStateMatchesHost) {
  OnDeviceSponge sponge(GetParam(), 15, 136);  // SN = 3, SHA3-256 rate
  const auto msgs = random_padded(3, 4, 136, 2);
  const auto states = sponge.absorb(msgs);
  ASSERT_EQ(states.size(), 3u);
  for (usize i = 0; i < 3; ++i) {
    EXPECT_EQ(states[i], host_absorb(msgs[i], 136)) << "message " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, OnDeviceSpongeTest,
                         ::testing::Values(Arch::k64Lmul1, Arch::k64Lmul8,
                                           Arch::k64Fused),
                         [](const auto& info) {
                           switch (info.param) {
                             case Arch::k64Lmul1: return "L1";
                             case Arch::k64Lmul8: return "L8";
                             default: return "Fused";
                           }
                         });

TEST(OnDeviceSponge, AbsorbOverheadIsSmall) {
  OnDeviceSponge sponge(Arch::k64Lmul8, 5, 168);
  const auto msgs = random_padded(1, 4, 168, 3);
  (void)sponge.absorb(msgs);
  // Block load (5 vector loads) + XOR (5) + loop control: a few tens of
  // cycles against a 1894-cycle permutation (< 4%).
  EXPECT_GT(sponge.last_absorb_overhead_per_block(), 0u);
  EXPECT_LT(sponge.last_absorb_overhead_per_block(), 70u);
}

TEST(OnDeviceSponge, CyclesScaleLinearlyInBlocks) {
  OnDeviceSponge sponge(Arch::k64Lmul8, 5, 168);
  (void)sponge.absorb(random_padded(1, 1, 168, 4));
  const u64 one = sponge.last_cycles();
  (void)sponge.absorb(random_padded(1, 5, 168, 5));
  const u64 five = sponge.last_cycles();
  EXPECT_NEAR(static_cast<double>(five) / static_cast<double>(one), 5.0, 0.1);
}

TEST(OnDeviceSponge, RejectsBadInput) {
  OnDeviceSponge sponge(Arch::k64Lmul8, 5, 168);
  EXPECT_THROW((void)sponge.absorb(std::vector<std::vector<u8>>{}), Error);
  // Not rate-padded.
  EXPECT_THROW((void)sponge.absorb(random_padded(1, 1, 100, 6)), Error);
  // More messages than SN.
  EXPECT_THROW((void)sponge.absorb(random_padded(2, 1, 168, 7)), Error);
  // Unequal lengths.
  OnDeviceSponge multi(Arch::k64Lmul8, 10, 168);
  std::vector<std::vector<u8>> uneven = {std::vector<u8>(168),
                                         std::vector<u8>(336)};
  EXPECT_THROW((void)multi.absorb(uneven), Error);
}

TEST(OnDeviceSponge, RejectsUnsupportedConfigs) {
  EXPECT_THROW(OnDeviceSponge(Arch::k32Lmul8, 5, 168), Error);
  EXPECT_THROW(OnDeviceSponge(Arch::k64PureRvv, 5, 168), Error);
  EXPECT_THROW(OnDeviceSponge(Arch::k64Lmul8, 5, 100), Error);  // rate % 8
}

}  // namespace
}  // namespace kvx::core
