// Tests for the two-pass assembler: syntax, labels, pseudo-instructions,
// directives, error reporting, and disassembly round trips.
#include <gtest/gtest.h>

#include "kvx/asm/assembler.hpp"
#include "kvx/asm/image_io.hpp"
#include "kvx/common/error.hpp"
#include "kvx/isa/disasm.hpp"
#include "kvx/isa/encoding.hpp"

namespace kvx::assembler {
namespace {

using isa::Opcode;

isa::Instruction first(const std::string& src) {
  const Program p = assemble(src);
  EXPECT_FALSE(p.text.empty());
  return isa::decode(p.text.at(0));
}

TEST(Assembler, BasicArithmetic) {
  const auto inst = first("addi a0, a1, -42");
  EXPECT_EQ(inst.op, Opcode::kAddi);
  EXPECT_EQ(inst.rd, 10);
  EXPECT_EQ(inst.rs1, 11);
  EXPECT_EQ(inst.imm, -42);
}

TEST(Assembler, RTypeAndNumericRegs) {
  const auto inst = first("xor x5, x6, x7");
  EXPECT_EQ(inst.op, Opcode::kXor);
  EXPECT_EQ(inst.rd, 5);
  EXPECT_EQ(inst.rs1, 6);
  EXPECT_EQ(inst.rs2, 7);
}

TEST(Assembler, MemoryOperands) {
  auto inst = first("lw t0, 8(sp)");
  EXPECT_EQ(inst.op, Opcode::kLw);
  EXPECT_EQ(inst.imm, 8);
  EXPECT_EQ(inst.rs1, 2);
  inst = first("sw t0, -12(s0)");
  EXPECT_EQ(inst.op, Opcode::kSw);
  EXPECT_EQ(inst.imm, -12);
}

TEST(Assembler, HexAndBinaryImmediates) {
  EXPECT_EQ(first("addi t0, zero, 0xFF").imm, 255);
  EXPECT_EQ(first("addi t0, zero, 0b101").imm, 5);
  EXPECT_EQ(first("addi t0, zero, -0x10").imm, -16);
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(R"(
     # full line comment
     addi t0, t0, 1   # trailing comment

     addi t1, t1, 2
  )");
  EXPECT_EQ(p.text.size(), 2u);
}

TEST(Assembler, LabelsAndBranches) {
  const Program p = assemble(R"(
    li s3, 0
loop:
    addi s3, s3, 1
    blt s3, s4, loop
    ebreak
  )");
  // blt is the third instruction (pc=8); loop is at pc=4 -> offset -4.
  const auto blt = isa::decode(p.text.at(2));
  EXPECT_EQ(blt.op, Opcode::kBlt);
  EXPECT_EQ(blt.imm, -4);
}

TEST(Assembler, ForwardReferences) {
  const Program p = assemble(R"(
    beq zero, zero, done
    addi t0, t0, 1
done:
    ebreak
  )");
  const auto beq = isa::decode(p.text.at(0));
  EXPECT_EQ(beq.imm, 8);
}

TEST(Assembler, JumpPseudo) {
  const Program p = assemble(R"(
start:
    j start
  )");
  const auto j = isa::decode(p.text.at(0));
  EXPECT_EQ(j.op, Opcode::kJal);
  EXPECT_EQ(j.rd, 0);
  EXPECT_EQ(j.imm, 0);
}

TEST(Assembler, LiSmallAndLarge) {
  // Small immediates: single addi.
  EXPECT_EQ(assemble("li t0, 42").text.size(), 1u);
  // Large: lui + addi.
  const Program p = assemble("li t0, 0x12345678");
  EXPECT_EQ(p.text.size(), 2u);
  EXPECT_EQ(isa::decode(p.text[0]).op, Opcode::kLui);
  EXPECT_EQ(isa::decode(p.text[1]).op, Opcode::kAddi);
  // Negative low part carry correction.
  const Program q = assemble("li t1, 0x12345FFF");
  EXPECT_EQ(isa::decode(q.text[0]).imm, 0x12346);
  EXPECT_EQ(isa::decode(q.text[1]).imm, -1);
}

TEST(Assembler, LiExactlyLuiWhenLowZero) {
  const Program p = assemble("li t0, 0x10000");
  EXPECT_EQ(p.text.size(), 1u);
  EXPECT_EQ(isa::decode(p.text[0]).op, Opcode::kLui);
}

TEST(Assembler, PseudoExpansions) {
  EXPECT_EQ(first("nop").op, Opcode::kAddi);
  EXPECT_EQ(first("mv a0, a1").op, Opcode::kAddi);
  const auto not_inst = first("not a0, a1");
  EXPECT_EQ(not_inst.op, Opcode::kXori);
  EXPECT_EQ(not_inst.imm, -1);
  EXPECT_EQ(first("ret").op, Opcode::kJalr);
  EXPECT_EQ(first("beqz t0, 8").op, Opcode::kBeq);
  EXPECT_EQ(first("bnez t0, 8").op, Opcode::kBne);
}

TEST(Assembler, CsrPseudos) {
  auto inst = first("csrr t0, 0xC00");
  EXPECT_EQ(inst.op, Opcode::kCsrrs);
  EXPECT_EQ(inst.rd, 5);
  EXPECT_EQ(inst.imm, 0xC00);
  inst = first("csrw 0x7C0, t1");
  EXPECT_EQ(inst.op, Opcode::kCsrrw);
  EXPECT_EQ(inst.rs1, 6);
  inst = first("csrwi 0x7C0, 3");
  EXPECT_EQ(inst.op, Opcode::kCsrrwi);
  EXPECT_EQ(inst.rs1, 3);
}

TEST(Assembler, DataSectionAndLa) {
  const Program p = assemble(R"(
    la a0, buffer
    ebreak
.data
buffer:
    .word 0x11223344
    .dword 0x8877665544332211
  )");
  EXPECT_EQ(p.symbol("buffer"), p.data_base);
  ASSERT_EQ(p.data.size(), 12u);
  EXPECT_EQ(p.data[0], 0x44);
  EXPECT_EQ(p.data[4], 0x11);
  EXPECT_EQ(p.data[11], 0x88);
  // la expands to lui+addi producing the absolute address.
  const auto lui = isa::decode(p.text.at(0));
  const auto addi = isa::decode(p.text.at(1));
  const u32 addr = (static_cast<u32>(lui.imm) << 12) +
                   static_cast<u32>(addi.imm);
  EXPECT_EQ(addr, p.data_base);
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(R"(
.data
a:  .byte 1, 2, 3
    .align 2
b:  .half 0x1234
    .zero 6
c:  .word 7
  )");
  EXPECT_EQ(p.symbol("a"), p.data_base);
  EXPECT_EQ(p.symbol("b"), p.data_base + 4);  // aligned from 3 to 4
  EXPECT_EQ(p.symbol("c"), p.data_base + 12);
  EXPECT_EQ(p.data[4], 0x34);
}

TEST(Assembler, EquConstants) {
  const Program p = assemble(R"(
.equ SIZE, 40
    addi t0, zero, SIZE
  )");
  EXPECT_EQ(isa::decode(p.text.at(0)).imm, 40);
}

TEST(Assembler, VectorInstructions) {
  auto inst = first("vxor.vv v5, v3, v4");
  EXPECT_EQ(inst.op, Opcode::kVxorVV);
  EXPECT_EQ(inst.rd, 5);
  EXPECT_EQ(inst.rs2, 3);
  EXPECT_EQ(inst.rs1, 4);
  inst = first("vxor.vx v10, v10, s2");
  EXPECT_EQ(inst.op, Opcode::kVxorVX);
  EXPECT_EQ(inst.rs1, 18);
  inst = first("vand.vi v1, v2, 7");
  EXPECT_EQ(inst.op, Opcode::kVandVI);
  EXPECT_EQ(inst.imm, 7);
}

TEST(Assembler, Vsetvli) {
  const auto inst = first("vsetvli x0, s1, e64, m8, tu, mu");
  EXPECT_EQ(inst.op, Opcode::kVsetvli);
  EXPECT_EQ(inst.rd, 0);
  EXPECT_EQ(inst.rs1, 9);
  EXPECT_EQ(inst.vtype.sew, 64u);
  EXPECT_EQ(inst.vtype.lmul, 8u);
  EXPECT_FALSE(inst.vtype.tail_agnostic);
}

TEST(Assembler, VectorMemory) {
  auto inst = first("vle64.v v0, (a0)");
  EXPECT_EQ(inst.op, Opcode::kVle64);
  EXPECT_EQ(inst.rs1, 10);
  inst = first("vlse32.v v1, (a1), t0");
  EXPECT_EQ(inst.op, Opcode::kVlse32);
  EXPECT_EQ(inst.rs2, 5);
  inst = first("vluxei32.v v2, (a2), v30");
  EXPECT_EQ(inst.op, Opcode::kVluxei32);
  EXPECT_EQ(inst.rs2, 30);
  inst = first("vsuxei32.v v2, (a2), v31");
  EXPECT_EQ(inst.op, Opcode::kVsuxei32);
}

TEST(Assembler, MaskedVectorInstruction) {
  const auto inst = first("vadd.vv v1, v2, v3, v0.t");
  EXPECT_FALSE(inst.vm);
}

TEST(Assembler, CustomInstructions) {
  auto inst = first("vslidedownm.vi v10, v5, 1");
  EXPECT_EQ(inst.op, Opcode::kVslidedownmVI);
  EXPECT_EQ(inst.imm, 1);
  inst = first("v64rho.vi v0, v0, -1");
  EXPECT_EQ(inst.op, Opcode::kV64rhoVI);
  EXPECT_EQ(inst.imm, -1);
  inst = first("vpi.vi v5, v2, 2");
  EXPECT_EQ(inst.op, Opcode::kVpiVI);
  inst = first("viota.vx v0, v0, s3");
  EXPECT_EQ(inst.op, Opcode::kViotaVX);
  EXPECT_EQ(inst.rs1, 19);
  inst = first("v32lrotup.vv v8, v23, v7");
  EXPECT_EQ(inst.op, Opcode::kV32lrotupVV);
  EXPECT_EQ(inst.rs2, 23);
  EXPECT_EQ(inst.rs1, 7);
}

TEST(Assembler, Errors) {
  EXPECT_THROW((void)assemble("frobnicate t0, t1"), AsmError);
  EXPECT_THROW((void)assemble("addi t0, t1"), AsmError);          // operand count
  EXPECT_THROW((void)assemble("addi t0, t1, 99999"), AsmError);   // imm range
  EXPECT_THROW((void)assemble("addi q7, t1, 0"), AsmError);       // bad register
  EXPECT_THROW((void)assemble("j nowhere"), AsmError);            // undefined label
  EXPECT_THROW((void)assemble("x: nop\nx: nop"), AsmError);       // duplicate label
  EXPECT_THROW((void)assemble(".word 1"), AsmError);              // data in .text
  EXPECT_THROW((void)assemble(".data\naddi t0,t0,1"), AsmError);  // text in .data
  EXPECT_THROW((void)assemble(".bogus 3"), AsmError);             // unknown directive
}

TEST(Assembler, ErrorMessagesCarryLineNumbers) {
  try {
    (void)assemble("nop\nnop\nbadop t0");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Assembler, DisassemblyReassembles) {
  // Disassembled text must reassemble to the identical word (round trip).
  const char* lines[] = {
      "addi a0,a1,-5",       "xor s1,s2,s3",
      "lw t0,8(sp)",         "sw t1,-4(s0)",
      "vxor.vv v5,v3,v4",    "vslidedownm.vi v10,v5,1",
      "v64rho.vi v1,v1,1",   "viota.vx v0,v0,s3",
      "vle64.v v0,(a0)",     "vsetvli x0,s1,e64,m8,tu,mu",
  };
  for (const char* line : lines) {
    const Program p = assemble(line);
    ASSERT_EQ(p.text.size(), 1u) << line;
    const std::string dis = isa::disassemble_word(p.text[0]);
    const Program q = assemble(dis);
    EXPECT_EQ(q.text.at(0), p.text[0]) << line << " -> " << dis;
  }
}

TEST(Assembler, AssembleLineHelper) {
  EXPECT_EQ(assemble_line("addi t0, t0, 1").op, Opcode::kAddi);
  EXPECT_THROW((void)assemble_line("nop\nnop"), AsmError);
}

TEST(Assembler, CustomBases) {
  Options opts;
  opts.text_base = 0x1000;
  opts.data_base = 0x8000;
  const Program p = assemble(R"(
entry:
    j entry
.data
d:  .word 5
  )", opts);
  EXPECT_EQ(p.symbol("entry"), 0x1000u);
  EXPECT_EQ(p.symbol("d"), 0x8000u);
}

// --- image serialization (the tools' container format) ------------------------

TEST(ImageIo, RoundTripPreservesEverything) {
  const Program p = assemble(R"(
entry:
    li t0, 42
    la a0, blob
    ebreak
.data
blob:
    .word 0xDEADBEEF
    .byte 1, 2, 3
  )");
  const auto bytes = image_bytes(p);
  const Program q = image_from_bytes(bytes);
  EXPECT_EQ(q.text, p.text);
  EXPECT_EQ(q.data, p.data);
  EXPECT_EQ(q.symbols, p.symbols);
  EXPECT_EQ(q.text_base, p.text_base);
  EXPECT_EQ(q.data_base, p.data_base);
}

TEST(ImageIo, RejectsBadMagic) {
  std::vector<u8> junk = {'N', 'O', 'P', 'E', 0, 0, 0, 0, 1, 2, 3};
  EXPECT_THROW(image_from_bytes(junk), Error);
}

TEST(ImageIo, RejectsTruncatedImage) {
  const Program p = assemble("nop\nebreak");
  auto bytes = image_bytes(p);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(image_from_bytes(bytes), Error);
}

TEST(ImageIo, EmptyProgram) {
  Program p;
  const Program q = image_from_bytes(image_bytes(p));
  EXPECT_TRUE(q.text.empty());
  EXPECT_TRUE(q.data.empty());
}

}  // namespace
}  // namespace kvx::assembler
