// Tests for TurboSHAKE (12-round XOF) and its on-device execution: the
// reduced-round accelerator programs (rounds = 12, first_round = 12) must
// produce the same permutation the host TurboSHAKE uses.
#include <gtest/gtest.h>

#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/keccak/keccak_p.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/keccak/turboshake.hpp"

namespace kvx::keccak {
namespace {

std::vector<u8> bytes_of(std::string_view s) { return {s.begin(), s.end()}; }

TEST(TurboShake, Permute12MatchesKeccakPRounds12To23) {
  SplitMix64 rng(1);
  State s;
  for (u64& lane : s.flat()) lane = rng.next();
  KeccakP1600::StateArray expect{};
  std::copy(s.flat().begin(), s.flat().end(), expect.begin());
  permute_12(s);
  for (unsigned ir = 12; ir < 24; ++ir) KeccakP1600::round(expect, ir);
  for (usize i = 0; i < kLanes; ++i) {
    EXPECT_EQ(s.flat()[i], expect[i]);
  }
}

TEST(TurboShake, DiffersFromShake) {
  // Same rate and domain byte as SHAKE128 but half the rounds.
  const auto msg = bytes_of("reduced rounds");
  EXPECT_NE(turboshake128(msg, 32), shake128(msg, 32));
}

TEST(TurboShake, DomainSeparation) {
  const auto msg = bytes_of("m");
  EXPECT_NE(turboshake128(msg, 32, 0x1F), turboshake128(msg, 32, 0x07));
  EXPECT_NE(turboshake256(msg, 32, 0x1F), turboshake256(msg, 32, 0x0B));
}

TEST(TurboShake, DomainByteRangeEnforced) {
  EXPECT_THROW((void)turboshake128({}, 32, 0x00), Error);
  EXPECT_THROW((void)turboshake128({}, 32, 0x80), Error);
  EXPECT_NO_THROW(turboshake128({}, 32, 0x01));
  EXPECT_NO_THROW(turboshake128({}, 32, 0x7F));
}

TEST(TurboShake, IncrementalMatchesOneShot) {
  SplitMix64 rng(2);
  std::vector<u8> msg(500);
  for (u8& b : msg) b = static_cast<u8>(rng.next());
  const auto expected = turboshake256(msg, 200);
  TurboShake xof(256);
  xof.absorb(std::span<const u8>(msg).first(123));
  xof.absorb(std::span<const u8>(msg).subspan(123));
  std::vector<u8> out;
  const auto a = xof.squeeze(77);
  const auto b = xof.squeeze(123);
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  EXPECT_EQ(out, expected);
}

TEST(TurboShake, SecurityLevelsValidated) {
  EXPECT_THROW(TurboShake xof(192), Error);
}

TEST(TurboShake, XofPrefixProperty) {
  const auto msg = bytes_of("prefix");
  const auto short_out = turboshake128(msg, 16);
  const auto long_out = turboshake128(msg, 64);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

}  // namespace
}  // namespace kvx::keccak

namespace kvx::core {
namespace {

using keccak::State;

class TurboOnDeviceTest : public ::testing::TestWithParam<Arch> {};

TEST_P(TurboOnDeviceTest, ReducedRoundProgramMatchesPermute12) {
  // rounds = 12, first_round = 12: the FIPS Keccak-p[1600,12] convention
  // the TurboSHAKE permutation uses.
  ProgramOptions opts;
  opts.arch = GetParam();
  opts.ele_num = 5;
  opts.rounds = 12;
  opts.first_round = 12;
  const KeccakProgram prog = build_keccak_program(opts);

  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = arch_elen(GetParam());
  cfg.vector.ele_num = 5;
  sim::SimdProcessor proc(cfg);
  proc.load_program(prog.image);

  SplitMix64 rng(3);
  State st;
  for (u64& lane : st.flat()) lane = rng.next();
  State expected = st;
  const u32 base = prog.image.symbol("state");
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned x = 0; x < 5; ++x) {
      proc.dmem().write64(base + (y * 5 + x) * 8, st.lane(x, y));
    }
  }
  proc.run();
  keccak::permute_12(expected);
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned x = 0; x < 5; ++x) {
      EXPECT_EQ(proc.dmem().read64(base + (y * 5 + x) * 8),
                expected.lane(x, y))
          << "x=" << x << " y=" << y;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, TurboOnDeviceTest,
                         ::testing::Values(Arch::k64Lmul1, Arch::k64Lmul8,
                                           Arch::k32Lmul8, Arch::k64Fused),
                         [](const auto& info) {
                           switch (info.param) {
                             case Arch::k64Lmul1: return "L1";
                             case Arch::k64Lmul8: return "L8";
                             case Arch::k32Lmul8: return "A32";
                             default: return "Fused";
                           }
                         });

TEST(TurboOnDevice, HalfTheCyclesOfFullKeccak) {
  VectorKeccak vk_full({Arch::k64Lmul8, 5, 24});
  VectorKeccak vk_turbo({Arch::k64Lmul8, 5, 12});
  const double ratio =
      static_cast<double>(vk_full.measure_permutation_cycles()) /
      static_cast<double>(vk_turbo.measure_permutation_cycles());
  EXPECT_NEAR(ratio, 2.0, 0.05);
}

}  // namespace
}  // namespace kvx::core
