// FIPS 202 known-answer tests and sponge behaviour tests for the SHA-3 /
// SHAKE host library.
#include <gtest/gtest.h>

#include <string>

#include "kvx/common/error.hpp"
#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/keccak/sha3.hpp"

namespace kvx::keccak {
namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

std::string hex_hash(Sha3Function f, std::string_view msg, usize out_len) {
  const auto digest = hash(f, bytes_of(msg), out_len);
  return to_hex(digest);
}

// --- FIPS 202 known answers ---------------------------------------------------

TEST(Sha3Kat, Sha3_224_Empty) {
  EXPECT_EQ(hex_hash(Sha3Function::kSha3_224, "", 28),
            "6b4e03423667dbb73b6e15454f0eb1abd4597f9a1b078e3f5b5a6bc7");
}

TEST(Sha3Kat, Sha3_224_Abc) {
  EXPECT_EQ(hex_hash(Sha3Function::kSha3_224, "abc", 28),
            "e642824c3f8cf24ad09234ee7d3c766fc9a3a5168d0c94ad73b46fdf");
}

TEST(Sha3Kat, Sha3_256_Empty) {
  EXPECT_EQ(hex_hash(Sha3Function::kSha3_256, "", 32),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3Kat, Sha3_256_Abc) {
  EXPECT_EQ(hex_hash(Sha3Function::kSha3_256, "abc", 32),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3Kat, Sha3_384_Empty) {
  EXPECT_EQ(hex_hash(Sha3Function::kSha3_384, "", 48),
            "0c63a75b845e4f7d01107d852e4c2485c51a50aaaa94fc61995e71bbee983a2a"
            "c3713831264adb47fb6bd1e058d5f004");
}

TEST(Sha3Kat, Sha3_384_Abc) {
  EXPECT_EQ(hex_hash(Sha3Function::kSha3_384, "abc", 48),
            "ec01498288516fc926459f58e2c6ad8df9b473cb0fc08c2596da7cf0e49be4b2"
            "98d88cea927ac7f539f1edf228376d25");
}

TEST(Sha3Kat, Sha3_512_Empty) {
  EXPECT_EQ(hex_hash(Sha3Function::kSha3_512, "", 64),
            "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a6"
            "15b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26");
}

TEST(Sha3Kat, Sha3_512_Abc) {
  EXPECT_EQ(hex_hash(Sha3Function::kSha3_512, "abc", 64),
            "b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e"
            "10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0");
}

TEST(Sha3Kat, Shake128_Empty32) {
  EXPECT_EQ(hex_hash(Sha3Function::kShake128, "", 32),
            "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26");
}

TEST(Sha3Kat, Shake256_Empty64) {
  EXPECT_EQ(hex_hash(Sha3Function::kShake256, "", 64),
            "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"
            "d75dc4ddd8c0f200cb05019d67b592f6fc821c49479ab48640292eacb3b7c4be");
}

// --- padding-boundary known answers -------------------------------------------
// Messages of rate-1, rate, and rate+1 bytes of 0xA3 for every fixed-output
// variant: these straddle the exact points where the pad10*1 rule switches
// between "pad fits in the final block", "a whole extra padding block", and
// "one byte spills into a second block". Expected digests cross-checked
// against CPython's hashlib (an independent SHA-3 implementation).

std::string hex_hash_a3(Sha3Function f, usize msg_len, usize out_len) {
  const std::vector<u8> msg(msg_len, 0xA3);
  return to_hex(hash(f, msg, out_len));
}

TEST(Sha3KatBoundary, Sha3_224_RateMinus1) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_224, 143, 28),
            "1e66e6c67ca1affecd0bb4c38b1a930933cb7e34e498e132f1c6661b");
}

TEST(Sha3KatBoundary, Sha3_224_Rate) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_224, 144, 28),
            "5cf2d36273844ce16ededcc9afb6a7a393a6c72c41731aea144b7a00");
}

TEST(Sha3KatBoundary, Sha3_224_RatePlus1) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_224, 145, 28),
            "a62008d33b7d2f3a621b8290848b6f21e7e252f101b0263b9868b205");
}

TEST(Sha3KatBoundary, Sha3_256_RateMinus1) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_256, 135, 32),
            "d51927265ca4bf0cc8b4453387700918c03f8894e395ad437d4573f3be4d2c34");
}

TEST(Sha3KatBoundary, Sha3_256_Rate) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_256, 136, 32),
            "0adf6bfb359ae40019b67d8c49c361574b70242a6b752de6f9e0d426ca177f7a");
}

TEST(Sha3KatBoundary, Sha3_256_RatePlus1) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_256, 137, 32),
            "e2fa06eaa22fe60106af67d5f6ea093fe58f07d2dcfb06d51057953f114849a7");
}

TEST(Sha3KatBoundary, Sha3_384_RateMinus1) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_384, 103, 48),
            "7c40347dc9ffa4d2334e2fddbec20a100197559eab927e71206a4fda3ee8bdc5"
            "b17eb4fbbb218f5b9caac0433a8a5383");
}

TEST(Sha3KatBoundary, Sha3_384_Rate) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_384, 104, 48),
            "27ac5ebc6f9995eb1038253a951df5471c866f4c764a85091124be6acd81e369"
            "c14b5323bbcd2b39310d5e2768317cbd");
}

TEST(Sha3KatBoundary, Sha3_384_RatePlus1) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_384, 105, 48),
            "2597bb726c068dc85988410671769dba9a8528ba4f63d2e9b11957ca242f59cb"
            "c4f746fc93c1c87d7c66b5bedb36f9e5");
}

TEST(Sha3KatBoundary, Sha3_512_RateMinus1) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_512, 71, 64),
            "3179c85b18c790518b1ddb02e6953b01b2d01ff72409b1ce0b38828c710ab7c0"
            "bd98f0a5c5861692c3954d8ce4fb02da42560be129c4dd5b3eadcb02908676e0");
}

TEST(Sha3KatBoundary, Sha3_512_Rate) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_512, 72, 64),
            "d24ce75b87c7be36e3fedbaa285f563d3efcc13663f5eb2fdd0c60033dab04e8"
            "94d343b3971bc0c9ba30e0dde18106cbaaa955c8c3c0bf1ec3490aafcae15788");
}

TEST(Sha3KatBoundary, Sha3_512_RatePlus1) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kSha3_512, 73, 64),
            "b5d2e4263c9ee9c66993a29db88c04a479df53ad69fb6742dffb0789a14e35fe"
            "46bc0f3a8bac7a2b83335b9b4ebb05b07fce2960a790e628a1dde08eb6bb22e0");
}

// The NIST CAVP "1600-bit" sample messages (200 bytes of 0xA3).
TEST(Sha3KatBoundary, Shake128_1600Bit) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kShake128, 200, 32),
            "131ab8d2b594946b9c81333f9bb6e0ce75c3b93104fa3469d3917457385da037");
}

TEST(Sha3KatBoundary, Shake256_1600Bit) {
  EXPECT_EQ(hex_hash_a3(Sha3Function::kShake256, 200, 64),
            "cd8a920ed141aa0407a22d59288652e9d9f1a7ee0c1e7c1ca699424da84a904d"
            "2d700caae7396ece96604440577da4f3aa22aeb8857f961c4cd8e06f0ae6610b");
}

// --- API surface ---------------------------------------------------------------

TEST(Sha3Api, RatesAndDigestSizes) {
  EXPECT_EQ(rate_bytes(Sha3Function::kSha3_224), 144u);
  EXPECT_EQ(rate_bytes(Sha3Function::kSha3_256), 136u);
  EXPECT_EQ(rate_bytes(Sha3Function::kSha3_384), 104u);
  EXPECT_EQ(rate_bytes(Sha3Function::kSha3_512), 72u);
  EXPECT_EQ(rate_bytes(Sha3Function::kShake128), 168u);
  EXPECT_EQ(rate_bytes(Sha3Function::kShake256), 136u);
  EXPECT_EQ(digest_bytes(Sha3Function::kSha3_512), 64u);
  EXPECT_EQ(digest_bytes(Sha3Function::kShake128), 0u);
}

TEST(Sha3Api, Names) {
  EXPECT_EQ(name(Sha3Function::kSha3_256), "SHA3-256");
  EXPECT_EQ(name(Sha3Function::kShake256), "SHAKE256");
}

TEST(Sha3Api, OneShotHelpersAgreeWithGeneric) {
  const auto msg = bytes_of("the quick brown fox");
  EXPECT_EQ(to_hex(sha3_256(msg)),
            to_hex(hash(Sha3Function::kSha3_256, msg, 32)));
  EXPECT_EQ(to_hex(sha3_512(msg)),
            to_hex(hash(Sha3Function::kSha3_512, msg, 64)));
  EXPECT_EQ(to_hex(sha3_224(msg)),
            to_hex(hash(Sha3Function::kSha3_224, msg, 28)));
  EXPECT_EQ(to_hex(sha3_384(msg)),
            to_hex(hash(Sha3Function::kSha3_384, msg, 48)));
}

TEST(Sha3Api, FixedOutputLengthEnforced) {
  EXPECT_THROW((void)hash(Sha3Function::kSha3_256, {}, 31), Error);
}

// --- incremental == one-shot ----------------------------------------------------

class IncrementalTest : public ::testing::TestWithParam<usize> {};

TEST_P(IncrementalTest, ChunkedUpdatesMatchOneShot) {
  const usize len = GetParam();
  SplitMix64 rng(len + 1);
  std::vector<u8> msg(len);
  for (u8& b : msg) b = static_cast<u8>(rng.next());

  const auto expected = sha3_256(msg);
  Hasher h(Sha3Function::kSha3_256);
  // Feed in irregular chunks.
  usize pos = 0;
  usize chunk = 1;
  while (pos < len) {
    const usize take = std::min(chunk, len - pos);
    h.update(std::span<const u8>(msg).subspan(pos, take));
    pos += take;
    chunk = chunk * 2 + 1;
  }
  EXPECT_EQ(to_hex(h.digest()), to_hex(expected));
}

INSTANTIATE_TEST_SUITE_P(Lengths, IncrementalTest,
                         ::testing::Values(0, 1, 3, 71, 72, 73, 135, 136, 137,
                                           200, 271, 272, 300, 1000));

TEST(Xof, SqueezeInPiecesMatchesOneShot) {
  const auto msg = bytes_of("xof streaming test");
  const auto expected = shake128(msg, 500);
  Xof xof(Sha3Function::kShake128);
  xof.absorb(msg);
  std::vector<u8> out;
  for (usize take : {1u, 7u, 100u, 160u, 232u}) {
    const auto part = xof.squeeze(take);
    out.insert(out.end(), part.begin(), part.end());
  }
  EXPECT_EQ(out, expected);
}

TEST(Xof, ResetGivesFreshStream) {
  Xof xof(Sha3Function::kShake256);
  xof.absorb("seed");
  const auto a = xof.squeeze(32);
  xof.reset();
  xof.absorb("seed");
  const auto b = xof.squeeze(32);
  EXPECT_EQ(a, b);
}

TEST(Xof, PermutationCountTracksBlocks) {
  Xof xof(Sha3Function::kShake128);
  xof.absorb(std::vector<u8>(168 * 3, 0x42));  // 3 full blocks
  (void)xof.squeeze(168 * 2);                  // pad block + 1 extra squeeze
  EXPECT_EQ(xof.permutation_count(), 3u + 1u + 1u);
}

TEST(Xof, RequiresShake) {
  EXPECT_THROW(Xof xof(Sha3Function::kSha3_256), Error);
}

TEST(Hasher, RequiresFixedOutput) {
  EXPECT_THROW(Hasher h(Sha3Function::kShake128), Error);
}

// --- sponge/domain properties ----------------------------------------------------

TEST(Sponge, DomainSeparationShakeVsSha3) {
  // Same message, same rate (SHA3-256 vs SHAKE256 at 136): different domains
  // must give different outputs.
  const auto msg = bytes_of("domain");
  const auto a = hash(Sha3Function::kSha3_256, msg, 32);
  const auto b = shake256(msg, 32);
  EXPECT_NE(a, b);
}

TEST(Sponge, PaddingBoundaries) {
  // Message lengths straddling the rate boundary must all hash distinctly.
  std::vector<std::string> digests;
  for (usize len : {135u, 136u, 137u}) {
    digests.push_back(to_hex(sha3_256(std::vector<u8>(len, 0x00))));
  }
  EXPECT_NE(digests[0], digests[1]);
  EXPECT_NE(digests[1], digests[2]);
  EXPECT_NE(digests[0], digests[2]);
}

TEST(Sponge, AbsorbAfterSqueezeRejected) {
  Sponge sponge(136, Domain::kSha3);
  std::array<u8, 4> out{};
  sponge.squeeze(out);
  EXPECT_THROW(sponge.absorb(std::array<u8, 1>{}), Error);
}

TEST(Sponge, InvalidRateRejected) {
  EXPECT_THROW(Sponge(0, Domain::kSha3), Error);
  EXPECT_THROW(Sponge(200, Domain::kSha3), Error);
}

}  // namespace
}  // namespace kvx::keccak
