// Tests for the SP 800-185 derived functions.
//
// Exact-value checks for the string-encoding primitives (fully specified by
// SP 800-185 §2.3) plus the mandated cSHAKE→SHAKE degradation; the
// higher-level constructions are verified structurally (domain separation,
// tuple unambiguity, key separation, XOF-vs-fixed distinction) and against
// pinned KMAC256 vectors (one transcribed NIST sample, one long-customization
// vector cross-checked with an independent implementation).
#include <gtest/gtest.h>

#include "kvx/common/hex.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/keccak/sp800_185.hpp"

namespace kvx::keccak {
namespace {

std::vector<u8> bytes_of(std::string_view s) { return {s.begin(), s.end()}; }

// --- encodings (exact per spec) ------------------------------------------------

TEST(Encodings, LeftEncode) {
  EXPECT_EQ(left_encode(0), (std::vector<u8>{0x01, 0x00}));
  EXPECT_EQ(left_encode(1), (std::vector<u8>{0x01, 0x01}));
  EXPECT_EQ(left_encode(255), (std::vector<u8>{0x01, 0xFF}));
  EXPECT_EQ(left_encode(256), (std::vector<u8>{0x02, 0x01, 0x00}));
  EXPECT_EQ(left_encode(0x12345), (std::vector<u8>{0x03, 0x01, 0x23, 0x45}));
}

TEST(Encodings, RightEncode) {
  EXPECT_EQ(right_encode(0), (std::vector<u8>{0x00, 0x01}));
  EXPECT_EQ(right_encode(1), (std::vector<u8>{0x01, 0x01}));
  EXPECT_EQ(right_encode(256), (std::vector<u8>{0x01, 0x00, 0x02}));
}

TEST(Encodings, EncodeString) {
  EXPECT_EQ(encode_string(std::string_view("")),
            (std::vector<u8>{0x01, 0x00}));
  // "KMAC": 4 bytes = 32 bits.
  EXPECT_EQ(encode_string(std::string_view("KMAC")),
            (std::vector<u8>{0x01, 0x20, 'K', 'M', 'A', 'C'}));
}

TEST(Encodings, Bytepad) {
  const auto padded = bytepad(std::vector<u8>{0xAA, 0xBB}, 8);
  // left_encode(8) = {0x01, 0x08}; total 4 bytes -> pad to 8.
  EXPECT_EQ(padded,
            (std::vector<u8>{0x01, 0x08, 0xAA, 0xBB, 0x00, 0x00, 0x00, 0x00}));
  EXPECT_EQ(bytepad({}, 4).size(), 4u);
  for (usize w : {1u, 3u, 136u, 168u}) {
    EXPECT_EQ(bytepad(std::vector<u8>(17, 1), w).size() % w, 0u) << w;
  }
}

// --- cSHAKE ---------------------------------------------------------------------

TEST(Cshake, EmptyNAndSEqualsShake) {
  const auto msg = bytes_of("degenerate case");
  EXPECT_EQ(cshake128(msg, 64, {}, {}), shake128(msg, 64));
  EXPECT_EQ(cshake256(msg, 64, {}, {}), shake256(msg, 64));
}

TEST(Cshake, CustomizationSeparatesDomains) {
  const auto msg = bytes_of("message");
  const auto a = cshake128(msg, 32, {}, bytes_of("app A"));
  const auto b = cshake128(msg, 32, {}, bytes_of("app B"));
  const auto plain = shake128(msg, 32);
  EXPECT_NE(a, b);
  EXPECT_NE(a, plain);
  EXPECT_NE(b, plain);
}

TEST(Cshake, FunctionNameSeparates) {
  const auto msg = bytes_of("m");
  EXPECT_NE(cshake256(msg, 32, bytes_of("F1"), {}),
            cshake256(msg, 32, bytes_of("F2"), {}));
}

TEST(Cshake, OutputsAreExtensions) {
  // Squeezing more keeps the prefix (XOF property must survive the prefix
  // block).
  const auto msg = bytes_of("prefix property");
  const auto s = bytes_of("S");
  const auto short_out = cshake128(msg, 32, {}, s);
  const auto long_out = cshake128(msg, 96, {}, s);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(Cshake, PrefixBlockCostsOnePermutation) {
  // bytepad pads N/S to exactly one rate block, so cSHAKE of a short message
  // differs from SHAKE by one extra absorb block. Verified indirectly: same
  // message and S across the two security levels must differ.
  const auto msg = bytes_of("x");
  EXPECT_NE(cshake128(msg, 32, {}, bytes_of("S")),
            cshake256(msg, 32, {}, bytes_of("S")));
}

// --- KMAC ------------------------------------------------------------------------

TEST(Kmac, KeySeparation) {
  const auto msg = bytes_of("authenticated message");
  const auto mac1 = kmac128(bytes_of("key-1"), msg, 32);
  const auto mac2 = kmac128(bytes_of("key-2"), msg, 32);
  EXPECT_NE(mac1, mac2);
}

TEST(Kmac, MessageSensitivity) {
  const auto key = bytes_of("key");
  EXPECT_NE(kmac256(key, bytes_of("m1"), 32), kmac256(key, bytes_of("m2"), 32));
}

TEST(Kmac, OutputLengthIsBoundIntoMac) {
  // KMAC encodes L into the input, so a 32-byte MAC is NOT a prefix of a
  // 64-byte MAC (unlike a plain XOF).
  const auto key = bytes_of("key");
  const auto msg = bytes_of("msg");
  const auto mac32 = kmac128(key, msg, 32);
  const auto mac64 = kmac128(key, msg, 64);
  EXPECT_FALSE(std::equal(mac32.begin(), mac32.end(), mac64.begin()));
}

TEST(Kmac, XofVariantIsPrefixFree) {
  // KMACXOF uses right_encode(0): longer outputs extend shorter ones.
  const auto key = bytes_of("key");
  const auto msg = bytes_of("msg");
  const auto x32 = kmacxof128(key, msg, 32);
  const auto x64 = kmacxof128(key, msg, 64);
  EXPECT_TRUE(std::equal(x32.begin(), x32.end(), x64.begin()));
  EXPECT_NE(x32, kmac128(key, msg, 32));  // and differs from fixed KMAC
}

TEST(Kmac, CustomizationString) {
  const auto key = bytes_of("key");
  const auto msg = bytes_of("msg");
  EXPECT_NE(kmac256(key, msg, 32, bytes_of("ctx A")),
            kmac256(key, msg, 32, bytes_of("ctx B")));
}

TEST(Kmac, EmptyKeyAndMessageStillWork) {
  EXPECT_EQ(kmac128({}, {}, 32).size(), 32u);
}

// NIST SP 800-185 KMAC256 sample #6: Key = 0x40..0x5F, Data = 0x00..0xC7,
// L = 512 bits, S = "My Tagged Application".
TEST(Kmac, Kmac256NistSample6) {
  std::vector<u8> key(32), data(200);
  for (usize i = 0; i < key.size(); ++i) key[i] = static_cast<u8>(0x40 + i);
  for (usize i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  EXPECT_EQ(to_hex(kmac256(key, data, 64, bytes_of("My Tagged Application"))),
            "b58618f71f92e1d56c1b8c55ddd7cd188b97b4ca4d99831eb2699a837da2e4d9"
            "70fbacfde50033aea585f1a2708510c32d07880801bd182898fe476876fc8965");
}

// A customization string longer than the SHAKE256 rate (150 > 136 bytes):
// the cSHAKE prefix block must spill into a second block, exercising the
// bytepad path no short NIST sample reaches. Expected value cross-checked
// against an independent from-scratch Keccak/KMAC implementation.
TEST(Kmac, Kmac256LongCustomizationSpansTwoPrefixBlocks) {
  std::vector<u8> key(32);
  for (usize i = 0; i < key.size(); ++i) key[i] = static_cast<u8>(0x40 + i);
  std::string cust;
  while (cust.size() < 150) {
    cust += "The quick brown fox jumps over the lazy dog. ";
  }
  cust.resize(150);
  const std::vector<u8> msg(64, 0xA3);
  EXPECT_EQ(to_hex(kmac256(key, msg, 32, bytes_of(cust))),
            "689121860e10e7c3b77833110d67477a8667d585bcc3e7fffb0d82ccaf0963c0");
}

// --- TupleHash ----------------------------------------------------------------------

TEST(TupleHash, UnambiguousEncoding) {
  // The design goal: ("abc", "def") must differ from ("ab", "cdef") etc.
  const std::vector<std::vector<u8>> t1 = {bytes_of("abc"), bytes_of("def")};
  const std::vector<std::vector<u8>> t2 = {bytes_of("ab"), bytes_of("cdef")};
  const std::vector<std::vector<u8>> t3 = {bytes_of("abcdef")};
  const auto h1 = tuple_hash128(t1, 32);
  const auto h2 = tuple_hash128(t2, 32);
  const auto h3 = tuple_hash128(t3, 32);
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(h2, h3);
}

TEST(TupleHash, EmptyElementsAreSignificant) {
  const std::vector<std::vector<u8>> t1 = {bytes_of("a")};
  const std::vector<std::vector<u8>> t2 = {bytes_of("a"), {}};
  EXPECT_NE(tuple_hash256(t1, 32), tuple_hash256(t2, 32));
}

TEST(TupleHash, OrderMatters) {
  const std::vector<std::vector<u8>> t1 = {bytes_of("x"), bytes_of("y")};
  const std::vector<std::vector<u8>> t2 = {bytes_of("y"), bytes_of("x")};
  EXPECT_NE(tuple_hash128(t1, 32), tuple_hash128(t2, 32));
}

TEST(TupleHash, SecurityLevelsDiffer) {
  const std::vector<std::vector<u8>> t = {bytes_of("x")};
  EXPECT_NE(tuple_hash128(t, 32), tuple_hash256(t, 32));
}

TEST(TupleHash, Deterministic) {
  const std::vector<std::vector<u8>> t = {bytes_of("a"), bytes_of("b")};
  EXPECT_EQ(tuple_hash128(t, 48), tuple_hash128(t, 48));
}

}  // namespace
}  // namespace kvx::keccak
