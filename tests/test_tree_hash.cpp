// Tests for KangarooTwelve-style tree hashing: host reference framing plus
// the host-vs-accelerator differential (the leaves run SN-wide on the
// simulated vector unit).
#include <gtest/gtest.h>

#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/parallel_tree_hash.hpp"
#include "kvx/keccak/tree_hash.hpp"
#include "kvx/keccak/turboshake.hpp"

namespace kvx::keccak {
namespace {

std::vector<u8> random_bytes(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<u8> v(n);
  for (u8& b : v) b = static_cast<u8>(rng.next());
  return v;
}

TEST(TreeHash, SingleChunkIsFlatTurboShake) {
  const auto msg = random_bytes(1000, 1);
  EXPECT_EQ(tree_hash128(msg, 32),
            turboshake128(msg, 32, TreeHashDomains::kSingle));
}

TEST(TreeHash, ChunkBoundaryExactlyOneChunkStaysFlat) {
  const TreeHashParams p;
  const auto msg = random_bytes(p.chunk_bytes, 2);
  EXPECT_EQ(tree_hash128(msg, 32),
            turboshake128(msg, 32, TreeHashDomains::kSingle));
}

TEST(TreeHash, OneByteOverChunkSwitchesToTree) {
  const TreeHashParams p;
  const auto base = random_bytes(p.chunk_bytes, 3);
  auto over = base;
  over.push_back(0x42);
  // The tree form must differ from flat-hashing the same bytes.
  EXPECT_NE(tree_hash128(over, 32),
            turboshake128(over, 32, TreeHashDomains::kSingle));
}

TEST(TreeHash, FramingMatchesManualConstruction) {
  TreeHashParams p;
  p.chunk_bytes = 100;  // small chunks keep the test fast
  const auto msg = random_bytes(350, 4);  // 1 first + 3 leaves (100,100,50)
  // Manual: leaves -> CVs -> final node.
  std::vector<std::vector<u8>> cvs;
  for (usize pos = 100; pos < msg.size(); pos += 100) {
    const usize take = std::min<usize>(100, msg.size() - pos);
    cvs.push_back(turboshake128(
        std::span<const u8>(msg).subspan(pos, take), 32,
        TreeHashDomains::kLeaf));
  }
  const auto node = tree_hash_final_input(
      std::span<const u8>(msg).first(100), cvs);
  const auto expected = turboshake128(node, 64, TreeHashDomains::kFinal);
  EXPECT_EQ(tree_hash128(msg, 64, p), expected);
}

TEST(TreeHash, FinalInputLayout) {
  const std::vector<u8> first = {1, 2, 3};
  const std::vector<std::vector<u8>> cvs = {{0xAA}, {0xBB}};
  const auto node = tree_hash_final_input(first, cvs);
  // first ‖ 03 00*7 ‖ AA ‖ BB ‖ right_encode(2)={02,01} ‖ FF FF.
  const std::vector<u8> expect = {1,    2,    3,    0x03, 0, 0, 0, 0,
                                  0,    0,    0,    0xAA, 0xBB,
                                  0x02, 0x01, 0xFF, 0xFF};
  EXPECT_EQ(node, expect);
}

TEST(TreeHash, DistinctChunkingsDiffer) {
  TreeHashParams a, b;
  a.chunk_bytes = 128;
  b.chunk_bytes = 256;
  const auto msg = random_bytes(1000, 5);
  EXPECT_NE(tree_hash128(msg, 32, a), tree_hash128(msg, 32, b));
}

TEST(TreeHash, XofPrefixProperty) {
  const auto msg = random_bytes(20000, 6);
  const auto short_out = tree_hash128(msg, 16);
  const auto long_out = tree_hash128(msg, 64);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(),
                         long_out.begin()));
}

}  // namespace
}  // namespace kvx::keccak

namespace kvx::core {
namespace {

std::vector<u8> random_bytes(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<u8> v(n);
  for (u8& b : v) b = static_cast<u8>(rng.next());
  return v;
}

TEST(ParallelTreeHash, MatchesHostSingleChunk) {
  ParallelTreeHash accel(Arch::k64Lmul8, 5);
  const auto msg = random_bytes(500, 7);
  EXPECT_EQ(to_hex(accel.hash(msg, 32)),
            to_hex(keccak::tree_hash128(msg, 32)));
}

TEST(ParallelTreeHash, MatchesHostMultiChunk) {
  keccak::TreeHashParams params;
  params.chunk_bytes = 512;  // small chunks -> several leaves
  ParallelTreeHash accel(Arch::k64Lmul8, 20, params);  // SN = 4 leaves/batch
  const auto msg = random_bytes(5000, 8);              // ~9 leaves
  EXPECT_EQ(to_hex(accel.hash(msg, 48)),
            to_hex(keccak::tree_hash128(msg, 48, params)));
}

TEST(ParallelTreeHash, LeavesBatchAcrossLanes) {
  keccak::TreeHashParams params;
  params.chunk_bytes = 168;  // exactly one rate block per leaf
  ParallelTreeHash accel(Arch::k64Lmul8, 20, params);  // SN = 4
  // 1 first chunk + 8 equal leaves: 8 leaves at SN=4 -> 2 leaf batches,
  // plus the final node batch.
  const auto msg = random_bytes(168 * 9, 9);
  EXPECT_EQ(to_hex(accel.hash(msg, 32)),
            to_hex(keccak::tree_hash128(msg, 32, params)));
  // Leaves: 8 permutations across 2 batches (168-byte leaf = 1 block + pad
  // block = 2 permutations each... count only that batching happened).
  EXPECT_GE(accel.stats().permutations, 8u);
  EXPECT_LT(accel.stats().permutation_batches, accel.stats().permutations);
}

TEST(ParallelTreeHash, WorksOn32BitArch) {
  keccak::TreeHashParams params;
  params.chunk_bytes = 300;
  ParallelTreeHash accel(Arch::k32Lmul8, 10, params);
  const auto msg = random_bytes(1500, 10);
  EXPECT_EQ(to_hex(accel.hash(msg, 32)),
            to_hex(keccak::tree_hash128(msg, 32, params)));
}

}  // namespace
}  // namespace kvx::core
