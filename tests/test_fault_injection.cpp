// Fault-injection tests: the fail-soft contract of the sim + core + engine
// stack under deterministic injected faults.
//
// Fault model (see kvx/sim/fault_injector.hpp): faults are *detected*
// corruption — a bit flip or synthetic error that raises SimError, like a
// parity/ECC check would. The contract under test:
//  * fused/trace-tier faults demote the dispatch one tier at a time and
//    still produce the correct digest (and identical cycle counts);
//  * interpreter-tier faults surface as per-job errors in the engine, never
//    as silently wrong digests;
//  * compile-site faults demote at construction and are counted;
//  * all accounting invariants (submitted == completed + failed, both in
//    EngineStats and the Prometheus counters) hold exactly.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "kvx/common/error.hpp"
#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/sim/fault_injector.hpp"

namespace kvx {
namespace {

using core::VectorKeccak;
using core::VectorKeccakConfig;
using engine::Algo;
using engine::BatchHashEngine;
using engine::EngineConfig;
using engine::EngineStats;
using engine::HashJob;
using engine::JobResult;
using sim::ExecBackend;
using sim::FaultInjector;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSite;

std::vector<keccak::State> random_states(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<keccak::State> states(n);
  for (keccak::State& s : states) {
    for (unsigned x = 0; x < 5; ++x) {
      for (unsigned y = 0; y < 5; ++y) s.lane(x, y) = rng.next();
    }
  }
  return states;
}

void expect_states_equal(std::span<const keccak::State> a,
                         std::span<const keccak::State> b) {
  ASSERT_EQ(a.size(), b.size());
  for (usize s = 0; s < a.size(); ++s) {
    for (unsigned x = 0; x < 5; ++x) {
      for (unsigned y = 0; y < 5; ++y) {
        EXPECT_EQ(a[s].lane(x, y), b[s].lane(x, y))
            << "state " << s << " lane (" << x << "," << y << ")";
      }
    }
  }
}

VectorKeccakConfig accel_config(ExecBackend backend) {
  VectorKeccakConfig cfg{core::Arch::k64Lmul8, 15, 24};
  cfg.backend = backend;
  return cfg;
}

/// Interpreter reference permutation of the same inputs, no injector.
std::vector<keccak::State> reference_permute(u64 seed) {
  VectorKeccak ref(accel_config(ExecBackend::kInterpreter));
  auto states = random_states(3, seed);
  ref.permute(states);
  return states;
}

// --- FaultInjector unit behavior -----------------------------------------------

TEST(FaultInjector, DecisionStreamIsDeterministic) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.rate = 0.1;
  FaultInjector a(plan);
  FaultInjector b(plan);
  u64 injected = 0;
  for (usize n = 0; n < 500; ++n) {
    const FaultSite site =
        n % 5 == 0 ? FaultSite::kTraceCompile : FaultSite::kExecute;
    const auto fa = a.draw(site);
    const auto fb = b.draw(site);
    EXPECT_EQ(fa, fb) << "draw " << n;
    injected += fa.has_value() ? 1 : 0;
  }
  EXPECT_EQ(a.stats().draws, 500u);
  // rate 0.1 over 500 draws: expect a plausible, non-zero injected count.
  EXPECT_GT(injected, 10u);
  EXPECT_LT(injected, 150u);
}

TEST(FaultInjector, AtDrawFiresExactlyOnce) {
  FaultPlan plan;
  plan.at_draw = 3;
  plan.kinds = static_cast<u32>(FaultKind::kSimFault);
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.draw(FaultSite::kExecute).has_value());
  EXPECT_FALSE(inj.draw(FaultSite::kExecute).has_value());
  const auto f = inj.draw(FaultSite::kExecute);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(*f, FaultKind::kSimFault);
  for (usize n = 0; n < 20; ++n) {
    EXPECT_FALSE(inj.draw(FaultSite::kExecute).has_value());
  }
}

TEST(FaultInjector, SiteRestrictsKinds) {
  FaultPlan plan;
  plan.rate = 1.0;
  plan.kinds = static_cast<u32>(FaultKind::kCompileFail);
  FaultInjector inj(plan);
  // A compile-only mask never faults an execute site (and vice versa).
  EXPECT_FALSE(inj.draw(FaultSite::kExecute).has_value());
  EXPECT_EQ(*inj.draw(FaultSite::kTraceCompile), FaultKind::kCompileFail);
}

TEST(FaultInjector, ParseFaultPlanRoundTrip) {
  const FaultPlan plan = sim::parse_fault_plan(
      "seed=7,rate=1e-3,at=5,at-instruction=9,kinds=regflip+sim");
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.rate, 1e-3);
  EXPECT_EQ(plan.at_draw, 5u);
  EXPECT_EQ(plan.at_instruction, 9u);
  EXPECT_EQ(plan.kinds, static_cast<u32>(FaultKind::kRegfileBitFlip) |
                            static_cast<u32>(FaultKind::kSimFault));
  EXPECT_EQ(sim::parse_fault_plan("kinds=all").kinds, sim::kAllFaultKinds);
  EXPECT_THROW((void)sim::parse_fault_plan("rate=2"), Error);
  EXPECT_THROW((void)sim::parse_fault_plan("nonsense"), Error);
  EXPECT_THROW((void)sim::parse_fault_plan("kinds=bogus"), Error);
  EXPECT_THROW((void)sim::parse_fault_plan("rate=abc"), Error);
}

// --- VectorKeccak fallback chain -----------------------------------------------

TEST(FaultInjection, FusedSimFaultDemotesToTraceAndRecovers) {
  // Construction consumes draw 1 (fused compile site); the first dispatch
  // consumes draw 2 — arm exactly that one.
  auto cfg = accel_config(ExecBackend::kFusedTrace);
  FaultPlan plan;
  plan.at_draw = 2;
  plan.kinds = static_cast<u32>(FaultKind::kSimFault);
  cfg.fault_injector = std::make_shared<FaultInjector>(plan);
  VectorKeccak vk(cfg);
  ASSERT_EQ(vk.active_backend(), ExecBackend::kFusedTrace);

  auto states = random_states(3, 77);
  vk.permute(states);
  EXPECT_EQ(vk.last_backend(), ExecBackend::kCompiledTrace);
  EXPECT_EQ(vk.backend_fallbacks(), 1u);
  EXPECT_NE(vk.last_fallback_error().find("injected fault"),
            std::string::npos);
  expect_states_equal(states, reference_permute(77));

  // Cycle counts pass through the demotion unchanged (trace replays the
  // interpreter-recorded timing bit-identically).
  VectorKeccak clean(accel_config(ExecBackend::kFusedTrace));
  auto clean_states = random_states(3, 77);
  clean.permute(clean_states);
  EXPECT_EQ(vk.last_timing().permutation_cycles,
            clean.last_timing().permutation_cycles);
  EXPECT_EQ(vk.last_timing().total_cycles, clean.last_timing().total_cycles);

  // The fault was one-shot: the next dispatch runs fused again.
  vk.permute(states);
  EXPECT_EQ(vk.last_backend(), ExecBackend::kFusedTrace);
  EXPECT_EQ(vk.backend_fallbacks(), 1u);
}

TEST(FaultInjection, HostSimdSimFaultDemotesToFusedAndRecovers) {
  // Same shape as the fused test one tier up: construction consumes draw 1
  // (host-simd compile site), the first dispatch consumes draw 2.
  auto cfg = accel_config(ExecBackend::kHostSimd);
  FaultPlan plan;
  plan.at_draw = 2;
  plan.kinds = static_cast<u32>(FaultKind::kSimFault);
  cfg.fault_injector = std::make_shared<FaultInjector>(plan);
  VectorKeccak vk(cfg);
  ASSERT_EQ(vk.active_backend(), ExecBackend::kHostSimd);

  auto states = random_states(3, 66);
  vk.permute(states);
  EXPECT_EQ(vk.last_backend(), ExecBackend::kFusedTrace);
  EXPECT_EQ(vk.backend_fallbacks(), 1u);
  EXPECT_NE(vk.last_fallback_error().find("injected fault"),
            std::string::npos);
  expect_states_equal(states, reference_permute(66));

  // Cycle counts pass through the demotion unchanged.
  VectorKeccak clean(accel_config(ExecBackend::kHostSimd));
  auto clean_states = random_states(3, 66);
  clean.permute(clean_states);
  EXPECT_EQ(vk.last_timing().permutation_cycles,
            clean.last_timing().permutation_cycles);
  EXPECT_EQ(vk.last_timing().total_cycles, clean.last_timing().total_cycles);

  // One-shot: the next dispatch runs host-simd again.
  vk.permute(states);
  EXPECT_EQ(vk.last_backend(), ExecBackend::kHostSimd);
  EXPECT_EQ(vk.backend_fallbacks(), 1u);
}

TEST(FaultInjection, JitSimFaultDemotesToHostSimdAndRecovers) {
  // Top of the five-tier chain. Construction consumes one compile-site
  // draw per attempted tier — on a host that cannot emit native code the
  // jit tier demotes at construction and draws once more — so probe the
  // draw count with a never-firing injector first, then arm exactly the
  // first dispatch draw. The faulted dispatch must recover one tier down
  // from whatever tier construction landed on, bit-exactly.
  auto probe_cfg = accel_config(ExecBackend::kJit);
  probe_cfg.fault_injector = std::make_shared<FaultInjector>(FaultPlan{});
  VectorKeccak probe(probe_cfg);
  const ExecBackend built = probe.active_backend();
  ASSERT_GE(built, ExecBackend::kHostSimd);

  auto cfg = accel_config(ExecBackend::kJit);
  FaultPlan plan;
  plan.at_draw = probe_cfg.fault_injector->stats().draws + 1;
  plan.kinds = static_cast<u32>(FaultKind::kSimFault);
  cfg.fault_injector = std::make_shared<FaultInjector>(plan);
  VectorKeccak vk(cfg);
  ASSERT_EQ(vk.active_backend(), built);
  const u64 built_fallbacks = vk.backend_fallbacks();

  auto states = random_states(3, 44);
  vk.permute(states);
  EXPECT_EQ(vk.last_backend(), sim::demote_backend(built));
  EXPECT_EQ(vk.backend_fallbacks(), built_fallbacks + 1);
  EXPECT_NE(vk.last_fallback_error().find("injected fault"),
            std::string::npos);
  expect_states_equal(states, reference_permute(44));

  // Cycle counts pass through the demotion unchanged.
  VectorKeccak clean(accel_config(ExecBackend::kJit));
  auto clean_states = random_states(3, 44);
  clean.permute(clean_states);
  EXPECT_EQ(vk.last_timing().permutation_cycles,
            clean.last_timing().permutation_cycles);
  EXPECT_EQ(vk.last_timing().total_cycles, clean.last_timing().total_cycles);

  // One-shot: the next dispatch runs the built tier again.
  vk.permute(states);
  EXPECT_EQ(vk.last_backend(), built);
  EXPECT_EQ(vk.backend_fallbacks(), built_fallbacks + 1);
}

TEST(FaultInjection, JitCompileFaultChainDemotesToInterpreter) {
  auto cfg = accel_config(ExecBackend::kJit);
  FaultPlan plan;
  plan.rate = 1.0;
  plan.kinds = static_cast<u32>(FaultKind::kCompileFail);
  cfg.fault_injector = std::make_shared<FaultInjector>(plan);
  VectorKeccak vk(cfg);
  // jit rejected -> host-simd rejected -> fused rejected -> trace rejected
  // -> interpreter: four counted demotions, then clean dispatches.
  EXPECT_EQ(vk.active_backend(), ExecBackend::kInterpreter);
  EXPECT_EQ(vk.backend_fallbacks(), 4u);
  auto states = random_states(3, 322);
  vk.permute(states);
  expect_states_equal(states, reference_permute(322));
}

TEST(FaultInjection, HostSimdCompileFaultChainDemotesToInterpreter) {
  auto cfg = accel_config(ExecBackend::kHostSimd);
  FaultPlan plan;
  plan.rate = 1.0;
  plan.kinds = static_cast<u32>(FaultKind::kCompileFail);
  cfg.fault_injector = std::make_shared<FaultInjector>(plan);
  VectorKeccak vk(cfg);
  // host-simd rejected -> fused rejected -> trace rejected -> interpreter:
  // three counted demotions, then clean dispatches (kCompileFail does not
  // apply to execute sites).
  EXPECT_EQ(vk.active_backend(), ExecBackend::kInterpreter);
  EXPECT_EQ(vk.backend_fallbacks(), 3u);
  auto states = random_states(3, 321);
  vk.permute(states);
  expect_states_equal(states, reference_permute(321));
}

class BitFlipTest : public ::testing::TestWithParam<FaultKind> {};

TEST_P(BitFlipTest, DetectedFlipDemotesAndRecoversExactly) {
  auto cfg = accel_config(ExecBackend::kFusedTrace);
  FaultPlan plan;
  plan.at_draw = 2;
  plan.kinds = static_cast<u32>(GetParam());
  cfg.fault_injector = std::make_shared<FaultInjector>(plan);
  VectorKeccak vk(cfg);
  auto states = random_states(3, 88);
  vk.permute(states);
  EXPECT_EQ(vk.backend_fallbacks(), 1u);
  EXPECT_EQ(cfg.fault_injector->stats().bit_flips, 1u);
  // The demoted retry restages the inputs, so the flip cannot leak into
  // the result: lanes match the clean interpreter reference exactly.
  expect_states_equal(states, reference_permute(88));
}

INSTANTIATE_TEST_SUITE_P(Kinds, BitFlipTest,
                         ::testing::Values(FaultKind::kRegfileBitFlip,
                                           FaultKind::kMemoryBitFlip),
                         [](const auto& info) {
                           return info.param == FaultKind::kRegfileBitFlip
                                      ? "Regfile"
                                      : "Memory";
                         });

TEST(FaultInjection, InterpreterFaultPropagatesThenRecovers) {
  auto cfg = accel_config(ExecBackend::kInterpreter);
  FaultPlan plan;
  plan.at_draw = 1;  // interpreter has no compile draw: first dispatch
  plan.kinds = static_cast<u32>(FaultKind::kSimFault);
  cfg.fault_injector = std::make_shared<FaultInjector>(plan);
  VectorKeccak vk(cfg);
  auto states = random_states(3, 99);
  // No tier below the interpreter: the SimError reaches the caller.
  EXPECT_THROW(vk.permute(states), SimError);
  // One-shot: the retry computes the correct permutation.
  vk.permute(states);
  expect_states_equal(states, reference_permute(99));
}

TEST(FaultInjection, AtInstructionFaultIsOneShot) {
  auto cfg = accel_config(ExecBackend::kInterpreter);
  FaultPlan plan;
  plan.at_instruction = 100;
  cfg.fault_injector = std::make_shared<FaultInjector>(plan);
  VectorKeccak vk(cfg);
  auto states = random_states(3, 111);
  EXPECT_THROW(vk.permute(states), SimError);
  EXPECT_EQ(cfg.fault_injector->stats().sim_faults, 1u);
  vk.permute(states);  // disarmed: runs clean
  expect_states_equal(states, reference_permute(111));
}

TEST(FaultInjection, CompileFaultChainDemotesToInterpreter) {
  auto cfg = accel_config(ExecBackend::kFusedTrace);
  FaultPlan plan;
  plan.rate = 1.0;
  plan.kinds = static_cast<u32>(FaultKind::kCompileFail);
  cfg.fault_injector = std::make_shared<FaultInjector>(plan);
  VectorKeccak vk(cfg);
  // fused rejected -> trace rejected -> interpreter: two counted demotions.
  EXPECT_EQ(vk.active_backend(), ExecBackend::kInterpreter);
  EXPECT_EQ(vk.backend_fallbacks(), 2u);
  EXPECT_NE(vk.last_fallback_error().find("compilation rejected"),
            std::string::npos);
  // kCompileFail does not apply to execute sites: dispatches run clean.
  auto states = random_states(3, 123);
  vk.permute(states);
  expect_states_equal(states, reference_permute(123));
}

// --- engine-level fail-soft ------------------------------------------------------

std::vector<HashJob> fuzz_jobs(usize count, u64 seed) {
  constexpr Algo kAlgos[] = {Algo::kSha3_256, Algo::kSha3_512,
                             Algo::kShake128, Algo::kKmac256};
  SplitMix64 rng(seed);
  std::vector<HashJob> jobs(count);
  for (HashJob& job : jobs) {
    job.algo = kAlgos[rng.below(std::size(kAlgos))];
    job.message.resize(1 + rng.below(160));
    for (u8& b : job.message) b = static_cast<u8>(rng.next());
    if (engine::fixed_digest_bytes(job.algo) == 0) job.out_len = 32;
    if (job.algo == Algo::kKmac256) job.key = {1, 2, 3, 4, 5, 6, 7, 8};
  }
  return jobs;
}

TEST(FaultInjection, EngineCountsDispatchFallbacks) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kFusedTrace;
  FaultPlan plan;
  plan.at_draw = 2;  // shard construction draws 1; first dispatch draws 2
  plan.kinds = static_cast<u32>(FaultKind::kSimFault);
  cfg.accel.fault_injector = std::make_shared<FaultInjector>(plan);

  obs::Counter& fallbacks_c = obs::MetricsRegistry::global().counter(
      "kvx_engine_fallbacks_total");
  const u64 fb0 = fallbacks_c.value();

  BatchHashEngine engine(cfg);
  const auto jobs = fuzz_jobs(12, 55);
  engine.submit_all(jobs);
  const auto results = engine.drain_results();
  for (usize i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error;
    EXPECT_EQ(results[i].digest, engine::host_reference_digest(jobs[i]))
        << "job " << i;
  }
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(st.totals().fallbacks, 1u);
  EXPECT_EQ(fallbacks_c.value() - fb0, 1u);
}

TEST(FaultInjection, EngineCountsConstructionFallbacks) {
  EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kFusedTrace;
  FaultPlan plan;
  plan.rate = 1.0;
  plan.kinds = static_cast<u32>(FaultKind::kCompileFail);
  cfg.accel.fault_injector = std::make_shared<FaultInjector>(plan);

  BatchHashEngine engine(cfg);
  // Every shard demoted fused -> trace -> interpreter at construction.
  EXPECT_EQ(engine.stats().backend, "interpreter");
  EXPECT_EQ(engine.stats().totals().fallbacks, 4u);  // 2 per shard
  const auto jobs = fuzz_jobs(8, 56);
  engine.submit_all(jobs);
  const auto results = engine.drain_results();
  for (usize i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error;
    EXPECT_EQ(results[i].digest, engine::host_reference_digest(jobs[i]));
    EXPECT_EQ(results[i].backend, "interpreter");
  }
}

TEST(FaultInjection, InterpreterEngineFaultFailsOnlyItsDispatchGroup) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kInterpreter;
  FaultPlan plan;
  plan.at_draw = 1;
  plan.kinds = static_cast<u32>(FaultKind::kSimFault);
  cfg.accel.fault_injector = std::make_shared<FaultInjector>(plan);

  BatchHashEngine engine(cfg);
  const auto jobs = fuzz_jobs(40, 57);
  engine.submit_all(jobs);
  const auto results = engine.drain_results();
  usize failed = 0;
  for (usize i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      ++failed;
      EXPECT_NE(results[i].error.find("injected fault"), std::string::npos);
      EXPECT_TRUE(results[i].digest.empty());
    } else {
      EXPECT_EQ(results[i].digest, engine::host_reference_digest(jobs[i]))
          << "job " << i;
    }
  }
  // The armed fault hits the first dispatch group and nothing else.
  EXPECT_GE(failed, 1u);
  EXPECT_LT(failed, jobs.size());
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.submitted, jobs.size());
  EXPECT_EQ(st.failed, failed);
  EXPECT_EQ(st.completed, jobs.size() - failed);
  EXPECT_EQ(st.totals().failures, failed);
}

TEST(FaultInjection, ShardedSchedulerRecoversAndAttributesFallbacks) {
  // Regression (PR 6): the kvx-fuzz --quick configuration (SN=3, 2 workers,
  // 120 jobs, rate 0.02) pushed through the *sharded* scheduler's bulk
  // submit path. Fault-injected dispatches must still recover down the
  // fused -> trace -> interpreter chain exactly as under the old queue, and
  // every demotion must be attributed to the shard whose dispatch demoted —
  // a shard that never dispatched cannot carry a dispatch-time fallback.
  auto& r = obs::MetricsRegistry::global();
  obs::Counter& submitted_c = r.counter("kvx_engine_jobs_submitted_total");
  obs::Counter& completed_c = r.counter("kvx_engine_jobs_completed_total");
  obs::Counter& failures_c = r.counter("kvx_engine_job_failures_total");
  obs::Counter& fallbacks_c = r.counter("kvx_engine_fallbacks_total");
  const u64 sub0 = submitted_c.value();
  const u64 com0 = completed_c.value();
  const u64 fail0 = failures_c.value();
  const u64 fb0 = fallbacks_c.value();

  EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kFusedTrace;
  FaultPlan plan;
  plan.seed = 7;
  plan.rate = 0.02;
  // Execute-site kinds only, so construction compiles clean and every
  // counted fallback is attributable to a dispatch.
  plan.kinds = static_cast<u32>(FaultKind::kSimFault) |
               static_cast<u32>(FaultKind::kRegfileBitFlip) |
               static_cast<u32>(FaultKind::kMemoryBitFlip);
  cfg.accel.fault_injector = std::make_shared<FaultInjector>(plan);

  const auto jobs = fuzz_jobs(120, 58);
  BatchHashEngine engine(cfg);
  engine.submit_batch(jobs);
  engine.close();
  std::vector<JobResult> results;
  ASSERT_EQ(engine.drain_batch(results), jobs.size());
  usize failed = 0;
  for (usize i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      // Only a fault that fell all the way to the interpreter tier may
      // surface as a per-job error — never a silently wrong digest.
      ++failed;
      EXPECT_NE(results[i].error.find("injected fault"), std::string::npos);
      EXPECT_TRUE(results[i].digest.empty());
    } else {
      EXPECT_EQ(results[i].digest, engine::host_reference_digest(jobs[i]))
          << "job " << i << " diverged from the golden model";
    }
  }

  const EngineStats st = engine.stats();
  EXPECT_EQ(st.submitted, jobs.size());
  EXPECT_EQ(st.completed + st.failed, st.submitted);
  EXPECT_EQ(st.failed, failed);
  EXPECT_EQ(submitted_c.value() - sub0, jobs.size());
  EXPECT_EQ((completed_c.value() - com0) + (failures_c.value() - fail0),
            jobs.size());

  // The chain actually engaged (seed chosen so rate 0.02 injects), and the
  // attribution is exact: registry delta == EngineStats total == the sum
  // over shards, with nothing on dispatch-less shards.
  const u64 fb_delta = fallbacks_c.value() - fb0;
  EXPECT_GE(fb_delta, 1u);
  EXPECT_EQ(st.totals().fallbacks, fb_delta);
  u64 shard_sum = 0;
  for (const auto& shard : st.shards) {
    shard_sum += shard.fallbacks;
    if (shard.dispatches == 0) EXPECT_EQ(shard.fallbacks, 0u);
  }
  EXPECT_EQ(shard_sum, fb_delta);
}

// The acceptance matrix in miniature (kvx-fuzz runs the full-size version):
// every backend × thread count under probabilistic injection must keep all
// invariants and never produce a silently wrong digest.
class EngineFaultMatrixTest
    : public ::testing::TestWithParam<std::tuple<ExecBackend, unsigned>> {};

TEST_P(EngineFaultMatrixTest, InvariantsHoldUnderRandomFaults) {
  const auto [backend, threads] = GetParam();
  auto& r = obs::MetricsRegistry::global();
  obs::Counter& submitted_c = r.counter("kvx_engine_jobs_submitted_total");
  obs::Counter& completed_c = r.counter("kvx_engine_jobs_completed_total");
  obs::Counter& failures_c = r.counter("kvx_engine_job_failures_total");
  const u64 sub0 = submitted_c.value();
  const u64 com0 = completed_c.value();
  const u64 fail0 = failures_c.value();

  EngineConfig cfg;
  cfg.threads = threads;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = backend;
  FaultPlan plan;
  plan.seed = 1000 + static_cast<u64>(backend) * 10 + threads;
  plan.rate = 0.05;
  cfg.accel.fault_injector = std::make_shared<FaultInjector>(plan);

  const auto jobs = fuzz_jobs(60, plan.seed);
  BatchHashEngine engine(cfg);
  engine.submit_all(jobs);
  const auto results = engine.drain_results();
  ASSERT_EQ(results.size(), jobs.size());
  usize failed = 0;
  for (usize i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      ++failed;
      EXPECT_FALSE(results[i].error.empty());
      EXPECT_TRUE(results[i].digest.empty());
    } else {
      EXPECT_EQ(results[i].digest, engine::host_reference_digest(jobs[i]))
          << "job " << i << " diverged from the golden model";
    }
  }
  const EngineStats st = engine.stats();
  EXPECT_EQ(st.submitted, jobs.size());
  EXPECT_EQ(st.completed + st.failed, st.submitted);
  EXPECT_EQ(st.failed, failed);
  EXPECT_EQ(st.latency.count, jobs.size());
  EXPECT_EQ(submitted_c.value() - sub0, jobs.size());
  EXPECT_EQ((completed_c.value() - com0) + (failures_c.value() - fail0),
            jobs.size());
  EXPECT_EQ(failures_c.value() - fail0, failed);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsByThreads, EngineFaultMatrixTest,
    ::testing::Combine(::testing::Values(ExecBackend::kInterpreter,
                                         ExecBackend::kCompiledTrace,
                                         ExecBackend::kFusedTrace,
                                         ExecBackend::kHostSimd,
                                         ExecBackend::kJit),
                       ::testing::Values(1u, 8u)),
    [](const auto& info) {
      // gtest parameter names must be [A-Za-z0-9_]: "host-simd" → "host_simd".
      std::string name(sim::backend_name(std::get<0>(info.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_T" + std::to_string(std::get<1>(info.param));
    });

// --- per-job failure forensics ---------------------------------------------------

TEST(FaultForensics, ConstructionDemotionPathNamesEveryRejectedTier) {
  // Compile faults at rate 1.0 reject every compiled tier at construction;
  // jobs then succeed on the interpreter and each carries the full
  // construction-time demotion path: jit, host-simd, fused, trace — all
  // injected — in chain order.
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kJit;
  FaultPlan plan;
  plan.rate = 1.0;
  plan.kinds = static_cast<u32>(FaultKind::kCompileFail);
  cfg.accel.fault_injector = std::make_shared<FaultInjector>(plan);

  BatchHashEngine engine(cfg);
  const auto jobs = fuzz_jobs(6, 91);
  engine.submit_all(jobs);
  const auto results = engine.drain_results();
  const std::vector<std::string> expect_rejected = {"jit", "host-simd",
                                                    "fused", "trace"};
  for (const JobResult& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.backend, "interpreter");
    ASSERT_GE(r.demotion_path.size(), expect_rejected.size());
    for (usize t = 0; t < expect_rejected.size(); ++t) {
      EXPECT_EQ(r.demotion_path[t].backend, expect_rejected[t]);
      EXPECT_FALSE(r.demotion_path[t].error.empty());
      EXPECT_TRUE(r.demotion_path[t].injected) << r.demotion_path[t].error;
    }
    // The chain terminates in the tier that produced the digest.
    EXPECT_EQ(r.demotion_path.back().backend, "interpreter");
    EXPECT_TRUE(r.demotion_path.back().error.empty());
    EXPECT_NE(r.flight_seq, 0u);
  }
}

TEST(FaultForensics, FailedJobCarriesDemotionPathToTheInterpreter) {
  // Sim faults at rate 1.0 fault EVERY dispatch at every tier: the jobs
  // fail with a demotion path that names all five tiers of the chain, each
  // with its (injected) error. One identical-algo group, because tier
  // demotion is sticky — only the first failing dispatch walks the whole
  // chain; later groups would start already demoted.
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kJit;
  FaultPlan plan;
  plan.rate = 1.0;
  plan.kinds = static_cast<u32>(FaultKind::kSimFault);
  cfg.accel.fault_injector = std::make_shared<FaultInjector>(plan);

  BatchHashEngine engine(cfg);
  std::vector<HashJob> jobs(4);
  for (usize i = 0; i < jobs.size(); ++i) {
    jobs[i].algo = Algo::kSha3_256;
    jobs[i].message.assign(32 + i, static_cast<u8>(i));
  }
  engine.submit_all(jobs);
  const auto results = engine.drain_results();
  const std::vector<std::string> chain = {"jit", "host-simd", "fused",
                                          "trace", "interpreter"};
  for (const JobResult& r : results) {
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.digest.empty());
    ASSERT_EQ(r.demotion_path.size(), chain.size());
    for (usize t = 0; t < chain.size(); ++t) {
      EXPECT_EQ(r.demotion_path[t].backend, chain[t]);
      EXPECT_FALSE(r.demotion_path[t].error.empty()) << chain[t];
      EXPECT_TRUE(r.demotion_path[t].injected) << chain[t];
    }
    EXPECT_NE(r.flight_seq, 0u);
  }
}

TEST(FaultForensics, CleanDispatchCarriesNoDemotionPath) {
  EngineConfig cfg;
  cfg.threads = 1;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  cfg.accel.backend = ExecBackend::kFusedTrace;

  BatchHashEngine engine(cfg);
  const auto jobs = fuzz_jobs(6, 93);
  engine.submit_all(jobs);
  const auto results = engine.drain_results();
  for (const JobResult& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.demotion_path.empty());
    EXPECT_NE(r.flight_seq, 0u);
  }
}

}  // namespace
}  // namespace kvx
