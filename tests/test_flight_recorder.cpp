// Flight recorder + crash post-mortem tests: the always-on black box and
// the dump machinery it feeds.
//
// Covered here:
//  * recorder basics — sequence numbers are globally monotone, payloads
//    round-trip, disabled recording is a true no-op;
//  * the merged-timeline property under 8 concurrent writer threads: no
//    duplicated and no lost events, strictly increasing sequence order,
//    per-thread program order preserved;
//  * ring-wrap accounting (written keeps counting, stored caps at the ring
//    capacity, the snapshot holds the NEWEST events);
//  * dump_now() -> parse_dump() round-trip with a live engine: reason,
//    build info, events, metrics and the per-shard engine mirror all
//    survive the binary format;
//  * histogram exemplars — the bucket max carries its flight sequence;
//  * death tests: SIGABRT (and SIGSEGV where no sanitizer intercepts it)
//    leave a parseable crash dump with the right signal recorded.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "kvx/common/error.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/obs/flight_recorder.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/obs/postmortem.hpp"

namespace kvx {
namespace {

using obs::FlightEvent;
using obs::FlightEventType;
using obs::FlightRecorder;

/// Events recorded by THIS test are identified by a magic a0 tag — the
/// global recorder is shared with everything else in the process (engine
/// tests, cache instrumentation), so tests filter instead of assuming
/// exclusivity.
constexpr u64 kTag = 0x7465737464617461ull;

TEST(FlightRecorder, SequencesAreMonotoneAndPayloadsRoundTrip) {
  FlightRecorder& fr = FlightRecorder::global();
  const u64 s1 = fr.record(FlightEventType::kDispatch, 7, kTag, 42);
  const u64 s2 = fr.record(FlightEventType::kJobFail, 0, kTag, 43);
  ASSERT_NE(s1, 0u);
  EXPECT_GT(s2, s1);

  bool found = false;
  for (const FlightEvent& e : fr.snapshot_merged()) {
    if (e.seq != s1) continue;
    found = true;
    EXPECT_EQ(e.type(), FlightEventType::kDispatch);
    EXPECT_EQ(e.code, 7u);
    EXPECT_EQ(e.a0, kTag);
    EXPECT_EQ(e.a1, 42u);
    EXPECT_NE(e.ns, 0u);
  }
  EXPECT_TRUE(found);
}

TEST(FlightRecorder, DisabledRecordingIsANoOp) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.set_enabled(false);
  const u64 s = fr.record(FlightEventType::kDispatch, 0, kTag, 99);
  fr.set_enabled(true);
  EXPECT_EQ(s, 0u);
  for (const FlightEvent& e : fr.snapshot_merged()) {
    EXPECT_FALSE(e.a0 == kTag && e.a1 == 99) << "disabled event recorded";
  }
}

TEST(FlightRecorder, EventNamesAreStable) {
  EXPECT_EQ(obs::flight_event_name(FlightEventType::kJobSubmit),
            "job_submit");
  EXPECT_EQ(obs::flight_event_name(FlightEventType::kBackendDemotion),
            "backend_demotion");
  EXPECT_EQ(obs::flight_event_name(FlightEventType::kFaultInjected),
            "fault_injected");
  EXPECT_EQ(obs::flight_event_name(FlightEventType::kQueueSteal),
            "queue_steal");
}

TEST(FlightRecorder, HashIsStableFnv1a) {
  // FNV-1a 64 known-answer: dumps written today must hash identically in
  // any future kvx-doctor.
  EXPECT_EQ(obs::flight_hash(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(obs::flight_hash("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(obs::flight_hash("injected fault"),
            obs::flight_hash(std::string("injected fault")));
  EXPECT_NE(obs::flight_hash("x"), obs::flight_hash("y"));
}

TEST(FlightRecorder, EightThreadMergeLosesNothingAndKeepsOrder) {
  constexpr unsigned kThreads = 8;
  constexpr u64 kPerThread = 200;  // < ring capacity: nothing may wrap away
  FlightRecorder& fr = FlightRecorder::global();
  const u64 start_seq = fr.record(FlightEventType::kDispatch, 1, kTag, 0);
  ASSERT_NE(start_seq, 0u);

  // Each thread claims its ring (first record) BEFORE the barrier: rings
  // are recycled at thread exit, so without this a fast thread could
  // finish and release its ring before a slow one's first record, which
  // would then reuse (and wrap) the same ring and legitimately lose
  // events. The claim event uses code 99 so the window filter drops it.
  std::atomic<unsigned> ready{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ready] {
      FlightRecorder::global().record(FlightEventType::kDispatch, 99, kTag,
                                      0);
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (u64 i = 0; i < kPerThread; ++i) {
        // a1 encodes (thread, i) so the merged timeline can be checked for
        // per-thread program order after the fact.
        FlightRecorder::global().record(FlightEventType::kDispatch,
                                        static_cast<u16>(t + 100), kTag,
                                        (u64{t} << 32) | i);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const u64 end_seq = fr.record(FlightEventType::kDispatch, 2, kTag, 0);

  std::vector<FlightEvent> window;
  for (const FlightEvent& e : fr.snapshot_merged()) {
    if (e.seq > start_seq && e.seq < end_seq && e.a0 == kTag &&
        e.code >= 100) {
      window.push_back(e);
    }
  }
  // No lost events, no duplicates (snapshot_merged returns sorted order).
  ASSERT_EQ(window.size(), kThreads * kPerThread);
  u64 last_i[kThreads];
  bool seen[kThreads] = {};
  for (usize k = 0; k < window.size(); ++k) {
    if (k > 0) ASSERT_LT(window[k - 1].seq, window[k].seq);
    const unsigned t = static_cast<unsigned>(window[k].a1 >> 32);
    const u64 i = window[k].a1 & 0xFFFFFFFFull;
    ASSERT_LT(t, kThreads);
    if (seen[t]) {
      EXPECT_EQ(i, last_i[t] + 1) << "thread " << t << " order broken";
    } else {
      EXPECT_EQ(i, 0u);
      seen[t] = true;
    }
    last_i[t] = i;
  }
}

TEST(FlightRecorder, RingWrapKeepsNewestAndCountsWritten) {
  constexpr u64 kOverfill = FlightRecorder::kRingCapacity + 64;
  FlightRecorder& fr = FlightRecorder::global();
  std::atomic<u64> first_seq{0};
  std::atomic<u64> last_seq{0};
  // A dedicated thread gets a ring of its own; overfilling it wraps that
  // ring without disturbing this thread's.
  std::thread writer([&] {
    for (u64 i = 0; i < kOverfill; ++i) {
      const u64 s =
          fr.record(FlightEventType::kTraceCacheHit, 999, kTag, i);
      if (i == 0) first_seq.store(s);
      last_seq.store(s);
    }
  });
  writer.join();

  u64 survivors = 0;
  u64 min_i = kOverfill;
  u64 max_i = 0;
  for (const FlightEvent& e : fr.snapshot_merged()) {
    if (e.a0 == kTag && e.code == 999) {
      ++survivors;
      min_i = std::min(min_i, e.a1);
      max_i = std::max(max_i, e.a1);
    }
  }
  // Exactly one ring's worth survives and it is the NEWEST window.
  EXPECT_EQ(survivors, FlightRecorder::kRingCapacity);
  EXPECT_EQ(max_i, kOverfill - 1);
  EXPECT_EQ(min_i, kOverfill - FlightRecorder::kRingCapacity);
  EXPECT_EQ(last_seq.load() - first_seq.load(), kOverfill - 1);
}

TEST(Histogram, ExemplarTracksBucketMaxFlightSeq) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("lat", "", {100, 200});
  h.observe_exemplar(50, 7);    // bucket 0
  h.observe_exemplar(90, 8);    // bucket 0: new max 90 -> seq 8
  h.observe_exemplar(60, 9);    // bucket 0: not a max, seq stays 8
  h.observe_exemplar(150, 11);  // bucket 1
  h.observe(175);               // no exemplar: must not clobber seq 11
  const auto ex = h.exemplars();
  ASSERT_EQ(ex.size(), 3u);
  EXPECT_EQ(ex[0].value, 90u);
  EXPECT_EQ(ex[0].flight_seq, 8u);
  EXPECT_EQ(ex[1].value, 150u);
  EXPECT_EQ(ex[1].flight_seq, 11u);
  EXPECT_EQ(ex[2].flight_seq, 0u);  // +Inf bucket untouched
}

// ---------------------------------------------------------------------------
// Dump round-trip

std::string fresh_dump_dir(const char* tag) {
  const std::string dir =
      testing::TempDir() + "kvx_fr_" + tag + "_" +
      std::to_string(static_cast<unsigned long long>(::getpid()));
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

TEST(Postmortem, DumpNowRoundTripsThroughParse) {
  const std::string dir = fresh_dump_dir("roundtrip");
  obs::pm::set_dump_dir(dir);

  engine::EngineConfig cfg;
  cfg.threads = 2;
  cfg.accel = {core::Arch::k64Lmul8, 15, 24};
  engine::BatchHashEngine engine(cfg);
  std::vector<engine::HashJob> jobs(9);
  for (usize i = 0; i < jobs.size(); ++i) {
    jobs[i].algo = engine::Algo::kSha3_256;
    jobs[i].message.assign(64, static_cast<u8>(i));
  }
  engine.submit_all(jobs);
  const auto results = engine.drain_results();
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.error;

  const std::string path = obs::pm::dump_now("unit_test");
  ASSERT_FALSE(path.empty());
  const obs::pm::PostmortemDump dump = obs::pm::parse_dump(path);

  EXPECT_EQ(dump.version, obs::pm::kDumpVersion);
  EXPECT_EQ(dump.pid, static_cast<u64>(::getpid()));
  EXPECT_EQ(dump.signal, 0);
  EXPECT_EQ(dump.reason, "unit_test");
  EXPECT_NE(dump.build_info.find("version="), std::string::npos);
  EXPECT_NE(dump.build_info.find("compiler="), std::string::npos);

  // Events: non-empty, strictly increasing (merged timeline contract).
  ASSERT_FALSE(dump.events.empty());
  for (usize i = 1; i < dump.events.size(); ++i) {
    ASSERT_GT(dump.events[i].seq, dump.events[i - 1].seq);
  }

  // Metrics: the engine counters made it through the binary format.
  const obs::pm::DumpMetric* submitted = nullptr;
  const obs::pm::DumpMetric* latency = nullptr;
  for (const obs::pm::DumpMetric& m : dump.metrics) {
    if (m.name == "kvx_engine_jobs_submitted_total") submitted = &m;
    if (m.name == "kvx_engine_job_latency_ns") latency = &m;
  }
  ASSERT_NE(submitted, nullptr);
  EXPECT_GE(submitted->counter_value, jobs.size());
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->bucket_counts.size(), latency->bounds.size() + 1);
  EXPECT_EQ(latency->exemplars.size(), latency->bounds.size() + 1);

  // Engine mirror: this engine is still alive, so its mirror must be in
  // the dump with the exact totals.
  ASSERT_FALSE(dump.engines.empty());
  bool mirror_found = false;
  for (const obs::pm::DumpEngine& e : dump.engines) {
    if (e.submitted == jobs.size() && e.completed == jobs.size() &&
        e.failed == 0 && e.shards.size() == 2) {
      mirror_found = true;
      u64 shard_jobs = 0;
      for (const obs::pm::DumpShard& s : e.shards) shard_jobs += s.jobs;
      EXPECT_EQ(shard_jobs, jobs.size());
    }
  }
  EXPECT_TRUE(mirror_found);
  std::remove(path.c_str());
}

TEST(Postmortem, ParseRejectsGarbage) {
  const std::string dir = fresh_dump_dir("garbage");
  const std::string path = dir + "/not_a_dump.kvxdump";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a post-mortem dump at all", f);
  std::fclose(f);
  EXPECT_THROW(obs::pm::parse_dump(path), Error);
  EXPECT_THROW(obs::pm::parse_dump(dir + "/missing.kvxdump"), Error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Crash-path death tests. Each runs in a forked child (threadsafe style);
// the parent then parses the dump the dying child left behind.

class PostmortemDeathTest : public testing::Test {
 protected:
  void SetUp() override {
    // fork+exec style: the child re-runs from main(), so it cannot inherit
    // this process's threads mid-state (the engine tests leave workers).
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

/// The single *_crash.kvxdump inside `dir` (each death test uses a private
/// directory, so the one crash dump in it is the dead child's).
std::string find_crash_dump(const std::string& dir) {
  std::string crash_path;
  std::FILE* ls = ::popen(("ls " + dir).c_str(), "r");
  if (ls == nullptr) return crash_path;
  char name[512];
  while (std::fscanf(ls, "%511s", name) == 1) {
    if (std::string(name).find("_crash.kvxdump") != std::string::npos) {
      crash_path = dir + "/" + name;
    }
  }
  ::pclose(ls);
  return crash_path;
}

/// Death tests need a dump directory WITHOUT the pid in its name: the
/// threadsafe-style child re-runs the test body from main(), so a
/// pid-derived path would differ between the child (which writes the
/// dump) and the parent (which looks for it). Stale crash dumps from
/// earlier runs are removed so the one found afterwards is fresh.
std::string fixed_dump_dir(const char* tag) {
  const std::string dir = testing::TempDir() + "kvx_fr_" + tag;
  ::mkdir(dir.c_str(), 0755);
  for (std::string stale = find_crash_dump(dir); !stale.empty();
       stale = find_crash_dump(dir)) {
    std::remove(stale.c_str());
  }
  return dir;
}

TEST_F(PostmortemDeathTest, SigabrtLeavesParseableCrashDump) {
  const std::string dir = fixed_dump_dir("abrt");
  EXPECT_EXIT(
      {
        obs::pm::set_dump_dir(dir);
        obs::pm::install_crash_handler();
        // Stamp one recognizable event so the dump provably carries the
        // pre-crash timeline.
        obs::FlightRecorder::global().record(FlightEventType::kJobFail, 0,
                                             kTag, 0xABCD);
        std::abort();
      },
      testing::KilledBySignal(SIGABRT), "");

  const std::string crash_path = find_crash_dump(dir);
  ASSERT_FALSE(crash_path.empty()) << "no crash dump in " << dir;

  const obs::pm::PostmortemDump dump = obs::pm::parse_dump(crash_path);
  EXPECT_EQ(dump.signal, SIGABRT);
  EXPECT_NE(dump.reason.find("signal"), std::string::npos);
  bool stamped = false;
  for (const FlightEvent& e : dump.events) {
    if (e.type() == FlightEventType::kJobFail && e.a0 == kTag &&
        e.a1 == 0xABCD) {
      stamped = true;
    }
  }
  EXPECT_TRUE(stamped);
  std::remove(crash_path.c_str());
}

// Sanitizers intercept SIGSEGV for their own reporting, so the handler
// never runs there; SIGABRT above covers the crash path under sanitizers.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define KVX_SANITIZER_OWNS_SIGSEGV 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define KVX_SANITIZER_OWNS_SIGSEGV 1
#endif

#if !defined(KVX_SANITIZER_OWNS_SIGSEGV)
TEST_F(PostmortemDeathTest, SigsegvLeavesParseableCrashDump) {
  const std::string dir = fixed_dump_dir("segv");
  EXPECT_EXIT(
      {
        obs::pm::set_dump_dir(dir);
        obs::pm::install_crash_handler();
        volatile int* p = nullptr;
        *p = 1;  // NOLINT: intentional crash
      },
      testing::KilledBySignal(SIGSEGV), "");

  const std::string crash_path = find_crash_dump(dir);
  ASSERT_FALSE(crash_path.empty()) << "no crash dump in " << dir;
  const obs::pm::PostmortemDump dump = obs::pm::parse_dump(crash_path);
  EXPECT_EQ(dump.signal, SIGSEGV);
  std::remove(crash_path.c_str());
}
#endif

}  // namespace
}  // namespace kvx
