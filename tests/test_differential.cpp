// Differential / randomized testing.
//
// 1. Random Keccak step *schedules*: arbitrary sequences of step mappings
//    (not just the canonical θρπχι order) are executed on the simulated
//    accelerator with the custom instructions and compared against the
//    golden-model composition — this catches accidental coupling between
//    instructions that the fixed-order permutation tests cannot see.
// 2. Scalar "torture" programs: random RV32IM instruction sequences run on
//    the simulated core against an independently written expectation
//    evaluator.
#include <gtest/gtest.h>

#include <sstream>

#include "kvx/asm/assembler.hpp"
#include "kvx/common/bits.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/common/strings.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx {
namespace {

using keccak::State;

// ---------------------------------------------------------------------------
// 1. Random step schedules on the accelerator.
// ---------------------------------------------------------------------------

enum class Step { kTheta, kRho, kPi, kChi, kIota };

/// Emit assembly applying `step` to the state in v0..v4 (EleNum elements,
/// SEW=64), leaving the result in v0..v4 again.
void emit_step(std::ostringstream& os, Step step, unsigned round) {
  switch (step) {
    case Step::kTheta:
      os << R"(
    vsetvli x0, s1, e64, m1, tu, mu
    vxor.vv v5,v3,v4
    vxor.vv v6,v1,v2
    vxor.vv v7,v0,v6
    vxor.vv v5,v5,v7
    vslideupm.vi v6,v5,1
    vslidedownm.vi v7,v5,1
    vrotup.vi v7,v7,1
    vxor.vv v5,v6,v7
    vxor.vv v0,v0,v5
    vxor.vv v1,v1,v5
    vxor.vv v2,v2,v5
    vxor.vv v3,v3,v5
    vxor.vv v4,v4,v5
)";
      break;
    case Step::kRho:
      os << R"(
    vsetvli x0, s5, e64, m8, tu, mu
    v64rho.vi v0, v0, -1
)";
      break;
    case Step::kPi:
      os << R"(
    vsetvli x0, s5, e64, m8, tu, mu
    vpi.vi v8, v0, -1
    vmv.v.v v0, v8
)";
      break;
    case Step::kChi:
      os << R"(
    vsetvli x0, s5, e64, m8, tu, mu
    vslidedownm.vi v16, v0, 1
    vxor.vx v16, v16, s2
    vslidedownm.vi v24, v0, 2
    vand.vv v16, v16, v24
    vxor.vv v0, v0, v16
)";
      break;
    case Step::kIota:
      os << strfmt(R"(
    vsetvli x0, s1, e64, m1, tu, mu
    li t0, %u
    viota.vx v0, v0, t0
)", round);
      break;
  }
}

void apply_golden(State& s, Step step, unsigned round) {
  switch (step) {
    case Step::kTheta: keccak::theta(s); break;
    case Step::kRho: keccak::rho(s); break;
    case Step::kPi: keccak::pi(s); break;
    case Step::kChi: keccak::chi(s); break;
    case Step::kIota: keccak::iota(s, round); break;
  }
}

class ScheduleTest : public ::testing::TestWithParam<u64> {};

TEST_P(ScheduleTest, RandomStepScheduleMatchesGolden) {
  SplitMix64 rng(GetParam());
  const unsigned sn = 1 + static_cast<unsigned>(rng.below(3));  // 1..3 states
  const unsigned ele_num = 5 * sn;
  const usize schedule_len = 4 + rng.below(20);

  // Build the schedule.
  std::vector<std::pair<Step, unsigned>> schedule;
  for (usize k = 0; k < schedule_len; ++k) {
    const auto step = static_cast<Step>(rng.below(5));
    const auto round = static_cast<unsigned>(rng.below(24));
    schedule.emplace_back(step, round);
  }

  // Generate the accelerator program.
  std::ostringstream os;
  os << "    li s1, " << ele_num << "\n";
  os << "    li s5, " << 5 * ele_num << "\n";
  os << "    li s2, -1\n";
  for (const auto& [step, round] : schedule) emit_step(os, step, round);
  os << "    ebreak\n";

  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = 64;
  cfg.vector.ele_num = ele_num;
  sim::SimdProcessor proc(cfg);
  proc.load_program(assembler::assemble(os.str()));

  // Random initial states into the register file.
  std::vector<State> states(sn);
  for (State& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn; ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        proc.vector().set_element(y, 5 * i + x, 64, states[i].lane(x, y));
      }
    }
  }

  proc.run();

  // Golden composition.
  for (State& s : states) {
    for (const auto& [step, round] : schedule) apply_golden(s, step, round);
  }
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn; ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        EXPECT_EQ(proc.vector().get_element(y, 5 * i + x, 64),
                  states[i].lane(x, y))
            << "seed " << GetParam() << " x=" << x << " y=" << y
            << " state=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleTest,
                         ::testing::Range<u64>(1, 33));

// ---------------------------------------------------------------------------
// 1b. Random step schedules on the 32-bit architecture (paired hi/lo ops).
// ---------------------------------------------------------------------------

/// Emit the 32-bit implementation of `step` with lo halves in v0..v4 and hi
/// halves in v16..v20, leaving the result in the same registers.
void emit_step32(std::ostringstream& os, Step step, unsigned round) {
  switch (step) {
    case Step::kTheta:
      os << R"(
    vsetvli x0, s1, e32, m1, tu, mu
    vxor.vv v5,v3,v4
    vxor.vv v6,v1,v2
    vxor.vv v7,v0,v6
    vxor.vv v5,v5,v7
    vxor.vv v21,v19,v20
    vxor.vv v22,v17,v18
    vxor.vv v23,v16,v22
    vxor.vv v21,v21,v23
    vslideupm.vi v6,v5,1
    vslideupm.vi v22,v21,1
    vslidedownm.vi v7,v5,1
    vslidedownm.vi v23,v21,1
    v32lrotup.vv v8,v23,v7
    v32hrotup.vv v24,v23,v7
    vxor.vv v5,v6,v8
    vxor.vv v21,v22,v24
    vxor.vv v0,v0,v5
    vxor.vv v1,v1,v5
    vxor.vv v2,v2,v5
    vxor.vv v3,v3,v5
    vxor.vv v4,v4,v5
    vxor.vv v16,v16,v21
    vxor.vv v17,v17,v21
    vxor.vv v18,v18,v21
    vxor.vv v19,v19,v21
    vxor.vv v20,v20,v21
)";
      break;
    case Step::kRho:
      os << R"(
    vsetvli x0, s5, e32, m8, tu, mu
    v32lrho.vv v8, v16, v0
    v32hrho.vv v24, v16, v0
    vmv.v.v v0, v8
    vmv.v.v v16, v24
)";
      break;
    case Step::kPi:
      os << R"(
    vsetvli x0, s5, e32, m8, tu, mu
    vpi.vi v8, v0, -1
    vpi.vi v24, v16, -1
    vmv.v.v v0, v8
    vmv.v.v v16, v24
)";
      break;
    case Step::kChi:
      os << R"(
    vsetvli x0, s5, e32, m8, tu, mu
    vslidedownm.vi v8, v0, 1
    vxor.vx v8, v8, s2
    vslidedownm.vi v24, v0, 2
    vand.vv v8, v8, v24
    vxor.vv v0, v0, v8
    vslidedownm.vi v8, v16, 1
    vxor.vx v8, v8, s2
    vslidedownm.vi v24, v16, 2
    vand.vv v8, v8, v24
    vxor.vv v16, v16, v8
)";
      break;
    case Step::kIota:
      os << strfmt(R"(
    vsetvli x0, s1, e32, m1, tu, mu
    li t0, %u
    li t1, %u
    viota.vx v0, v0, t0
    viota.vx v16, v16, t1
)", 2 * round, 2 * round + 1);
      break;
  }
}

class Schedule32Test : public ::testing::TestWithParam<u64> {};

TEST_P(Schedule32Test, RandomStepScheduleMatchesGoldenOn32Bit) {
  SplitMix64 rng(GetParam() * 7919 + 5);
  const unsigned sn = 1 + static_cast<unsigned>(rng.below(3));
  const unsigned ele_num = 5 * sn;
  const usize schedule_len = 4 + rng.below(14);

  std::vector<std::pair<Step, unsigned>> schedule;
  for (usize k = 0; k < schedule_len; ++k) {
    schedule.emplace_back(static_cast<Step>(rng.below(5)),
                          static_cast<unsigned>(rng.below(24)));
  }

  std::ostringstream os;
  os << "    li s1, " << ele_num << "\n";
  os << "    li s5, " << 5 * ele_num << "\n";
  os << "    li s2, -1\n";
  for (const auto& [step, round] : schedule) emit_step32(os, step, round);
  os << "    ebreak\n";

  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = 32;
  cfg.vector.ele_num = ele_num;
  sim::SimdProcessor proc(cfg);
  proc.load_program(assembler::assemble(os.str()));

  std::vector<State> states(sn);
  for (State& s : states) {
    for (u64& lane : s.flat()) lane = rng.next();
  }
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn; ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        const u64 lane = states[i].lane(x, y);
        proc.vector().set_element(y, 5 * i + x, 32, lo32(lane));
        proc.vector().set_element(16 + y, 5 * i + x, 32, hi32(lane));
      }
    }
  }

  proc.run();

  for (State& s : states) {
    for (const auto& [step, round] : schedule) apply_golden(s, step, round);
  }
  for (unsigned y = 0; y < 5; ++y) {
    for (unsigned i = 0; i < sn; ++i) {
      for (unsigned x = 0; x < 5; ++x) {
        const u64 got =
            concat32(static_cast<u32>(
                         proc.vector().get_element(16 + y, 5 * i + x, 32)),
                     static_cast<u32>(
                         proc.vector().get_element(y, 5 * i + x, 32)));
        EXPECT_EQ(got, states[i].lane(x, y))
            << "seed " << GetParam() << " x=" << x << " y=" << y;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Schedule32Test, ::testing::Range<u64>(1, 25));

// ---------------------------------------------------------------------------
// 2. Scalar torture: random RV32IM sequences vs an independent evaluator.
// ---------------------------------------------------------------------------

struct TortureOp {
  const char* mnemonic;
  u32 (*eval)(u32 a, u32 b);
  bool uses_imm;  // second operand is a 12-bit immediate
};

u32 ev_add(u32 a, u32 b) { return a + b; }
u32 ev_sub(u32 a, u32 b) { return a - b; }
u32 ev_xor(u32 a, u32 b) { return a ^ b; }
u32 ev_or(u32 a, u32 b) { return a | b; }
u32 ev_and(u32 a, u32 b) { return a & b; }
u32 ev_sll(u32 a, u32 b) { return a << (b & 31); }
u32 ev_srl(u32 a, u32 b) { return a >> (b & 31); }
u32 ev_sra(u32 a, u32 b) {
  return static_cast<u32>(static_cast<i32>(a) >> static_cast<i32>(b & 31));
}
u32 ev_slt(u32 a, u32 b) {
  return static_cast<i32>(a) < static_cast<i32>(b) ? 1 : 0;
}
u32 ev_sltu(u32 a, u32 b) { return a < b ? 1 : 0; }
u32 ev_mul(u32 a, u32 b) { return a * b; }
u32 ev_mulh(u32 a, u32 b) {
  return static_cast<u32>(
      (static_cast<i64>(static_cast<i32>(a)) *
       static_cast<i64>(static_cast<i32>(b))) >> 32);
}
u32 ev_mulhu(u32 a, u32 b) {
  return static_cast<u32>((static_cast<u64>(a) * b) >> 32);
}
u32 ev_divu(u32 a, u32 b) { return b == 0 ? ~0u : a / b; }
u32 ev_remu(u32 a, u32 b) { return b == 0 ? a : a % b; }
u32 ev_rol(u32 a, u32 b) { return rotl32(a, b & 31); }
u32 ev_ror(u32 a, u32 b) { return rotr32(a, b & 31); }
u32 ev_andn(u32 a, u32 b) { return a & ~b; }
u32 ev_orn(u32 a, u32 b) { return a | ~b; }
u32 ev_xnor(u32 a, u32 b) { return ~(a ^ b); }
u32 ev_addi(u32 a, u32 imm) { return a + imm; }
u32 ev_xori(u32 a, u32 imm) { return a ^ imm; }
u32 ev_andi(u32 a, u32 imm) { return a & imm; }
u32 ev_ori(u32 a, u32 imm) { return a | imm; }

constexpr TortureOp kOps[] = {
    {"add", ev_add, false},   {"sub", ev_sub, false},
    {"xor", ev_xor, false},   {"or", ev_or, false},
    {"and", ev_and, false},   {"sll", ev_sll, false},
    {"srl", ev_srl, false},   {"sra", ev_sra, false},
    {"slt", ev_slt, false},   {"sltu", ev_sltu, false},
    {"mul", ev_mul, false},   {"mulh", ev_mulh, false},
    {"mulhu", ev_mulhu, false}, {"divu", ev_divu, false},
    {"remu", ev_remu, false}, {"rol", ev_rol, false},
    {"ror", ev_ror, false},   {"andn", ev_andn, false},
    {"orn", ev_orn, false},   {"xnor", ev_xnor, false},
    {"addi", ev_addi, true},
    {"xori", ev_xori, true},  {"andi", ev_andi, true},
    {"ori", ev_ori, true},
};

class TortureTest : public ::testing::TestWithParam<u64> {};

TEST_P(TortureTest, RandomScalarProgramMatchesEvaluator) {
  SplitMix64 rng(GetParam() * 977 + 13);
  // Working registers x5..x15, independently tracked.
  std::array<u32, 32> expect{};
  std::ostringstream os;
  for (unsigned r = 5; r <= 15; ++r) {
    const u32 v = rng.next32();
    expect[r] = v;
    os << strfmt("    li x%u, %d\n", r, static_cast<i32>(v));
  }
  const usize ops = 60 + rng.below(60);
  for (usize k = 0; k < ops; ++k) {
    const TortureOp& op = kOps[rng.below(std::size(kOps))];
    const unsigned rd = 5 + static_cast<unsigned>(rng.below(11));
    const unsigned rs1 = 5 + static_cast<unsigned>(rng.below(11));
    if (op.uses_imm) {
      const i32 imm = static_cast<i32>(rng.below(4096)) - 2048;
      os << strfmt("    %s x%u, x%u, %d\n", op.mnemonic, rd, rs1, imm);
      expect[rd] = op.eval(expect[rs1], static_cast<u32>(imm));
    } else {
      const unsigned rs2 = 5 + static_cast<unsigned>(rng.below(11));
      os << strfmt("    %s x%u, x%u, x%u\n", op.mnemonic, rd, rs1, rs2);
      expect[rd] = op.eval(expect[rs1], expect[rs2]);
    }
  }
  os << "    ebreak\n";

  sim::ProcessorConfig cfg;
  cfg.vector.ele_num = 5;
  sim::SimdProcessor proc(cfg);
  proc.load_program(assembler::assemble(os.str()));
  proc.run();
  for (unsigned r = 5; r <= 15; ++r) {
    EXPECT_EQ(proc.scalar().regs().read(r), expect[r])
        << "x" << r << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureTest, ::testing::Range<u64>(1, 41));

// ---------------------------------------------------------------------------
// 3. Vector torture: random RVV arithmetic sequences on v1..v7 vs an
//    independent element-wise evaluator (covers .vv/.vx/.vi, min/max,
//    compares feeding vmerge would complicate tracking, so we stick to the
//    pure element-wise group here).
// ---------------------------------------------------------------------------

struct VOpSpec {
  const char* mnemonic;  // printf pattern with operands appended
  int kind;              // 0 = vv, 1 = vx, 2 = vi
  u64 (*eval)(u64 a, u64 b);
};

u64 vev_add(u64 a, u64 b) { return a + b; }
u64 vev_sub(u64 a, u64 b) { return a - b; }
u64 vev_xor(u64 a, u64 b) { return a ^ b; }
u64 vev_or(u64 a, u64 b) { return a | b; }
u64 vev_and(u64 a, u64 b) { return a & b; }
u64 vev_sll(u64 a, u64 b) { return a << (b & 63); }
u64 vev_srl(u64 a, u64 b) { return a >> (b & 63); }
u64 vev_minu(u64 a, u64 b) { return std::min(a, b); }
u64 vev_maxu(u64 a, u64 b) { return std::max(a, b); }
u64 vev_min(u64 a, u64 b) {
  return static_cast<i64>(a) < static_cast<i64>(b) ? a : b;
}
u64 vev_max(u64 a, u64 b) {
  return static_cast<i64>(a) > static_cast<i64>(b) ? a : b;
}

constexpr VOpSpec kVOps[] = {
    {"vadd", 0, vev_add},  {"vadd", 1, vev_add},  {"vadd", 2, vev_add},
    {"vsub", 0, vev_sub},  {"vsub", 1, vev_sub},
    {"vxor", 0, vev_xor},  {"vxor", 1, vev_xor},  {"vxor", 2, vev_xor},
    {"vor", 0, vev_or},    {"vor", 1, vev_or},    {"vor", 2, vev_or},
    {"vand", 0, vev_and},  {"vand", 1, vev_and},  {"vand", 2, vev_and},
    {"vsll", 0, vev_sll},  {"vsrl", 0, vev_srl},
    {"vminu", 0, vev_minu},{"vmaxu", 0, vev_maxu},
    {"vmin", 0, vev_min},  {"vmax", 0, vev_max},
};

class VectorTortureTest : public ::testing::TestWithParam<u64> {};

TEST_P(VectorTortureTest, RandomVectorProgramMatchesEvaluator) {
  SplitMix64 rng(GetParam() * 131 + 7);
  const unsigned ele_num = 4 + static_cast<unsigned>(rng.below(13));
  constexpr unsigned kRegs = 7;  // v1..v7 tracked
  std::array<std::vector<u64>, kRegs + 1> expect;
  std::ostringstream os;
  os << "    li s1, " << ele_num << "\n";
  os << "    vsetvli x0, s1, e64, m1, tu, mu\n";

  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = 64;
  cfg.vector.ele_num = ele_num;
  sim::SimdProcessor proc(cfg);

  for (unsigned r = 1; r <= kRegs; ++r) {
    expect[r].resize(ele_num);
    for (unsigned e = 0; e < ele_num; ++e) {
      expect[r][e] = rng.next();
      proc.vector().set_element(r, e, 64, expect[r][e]);
    }
  }
  // Scalar pool for .vx operands.
  std::array<u32, 4> scalars{};
  for (usize k = 0; k < scalars.size(); ++k) {
    scalars[k] = rng.next32();
    os << strfmt("    li a%zu, %d\n", k, static_cast<i32>(scalars[k]));
  }

  const usize ops = 40 + rng.below(40);
  for (usize k = 0; k < ops; ++k) {
    const VOpSpec& op = kVOps[rng.below(std::size(kVOps))];
    const unsigned vd = 1 + static_cast<unsigned>(rng.below(kRegs));
    const unsigned vs2 = 1 + static_cast<unsigned>(rng.below(kRegs));
    std::vector<u64> result(ele_num);
    if (op.kind == 0) {
      const unsigned vs1 = 1 + static_cast<unsigned>(rng.below(kRegs));
      os << strfmt("    %s.vv v%u, v%u, v%u\n", op.mnemonic, vd, vs2, vs1);
      for (unsigned e = 0; e < ele_num; ++e) {
        result[e] = op.eval(expect[vs2][e], expect[vs1][e]);
      }
    } else if (op.kind == 1) {
      const usize si = rng.below(scalars.size());
      os << strfmt("    %s.vx v%u, v%u, a%zu\n", op.mnemonic, vd, vs2, si);
      const u64 sx = static_cast<u64>(
          static_cast<i64>(static_cast<i32>(scalars[si])));
      for (unsigned e = 0; e < ele_num; ++e) {
        result[e] = op.eval(expect[vs2][e], sx);
      }
    } else {
      const i32 imm = static_cast<i32>(rng.below(32)) - 16;
      os << strfmt("    %s.vi v%u, v%u, %d\n", op.mnemonic, vd, vs2, imm);
      const u64 sx = static_cast<u64>(static_cast<i64>(imm));
      for (unsigned e = 0; e < ele_num; ++e) {
        result[e] = op.eval(expect[vs2][e], sx);
      }
    }
    expect[vd] = std::move(result);
  }
  os << "    ebreak\n";

  proc.load_program(assembler::assemble(os.str()));
  proc.run();
  for (unsigned r = 1; r <= kRegs; ++r) {
    for (unsigned e = 0; e < ele_num; ++e) {
      EXPECT_EQ(proc.vector().get_element(r, e, 64), expect[r][e])
          << "v" << r << "[" << e << "] seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorTortureTest, ::testing::Range<u64>(1, 25));

}  // namespace
}  // namespace kvx
