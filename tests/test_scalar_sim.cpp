// Tests for the scalar RV32IM core: per-instruction semantics, M-extension
// edge cases, control flow, memory, CSRs, and small end-to-end programs.
#include <gtest/gtest.h>

#include "kvx/asm/assembler.hpp"
#include "kvx/common/error.hpp"
#include "kvx/sim/processor.hpp"

namespace kvx::sim {
namespace {

SimdProcessor make_proc() {
  ProcessorConfig cfg;
  cfg.vector.elen_bits = 64;
  cfg.vector.ele_num = 5;
  cfg.dmem_bytes = 1 << 16;
  return SimdProcessor(cfg);
}

/// Assemble, run to completion, return the processor for inspection.
SimdProcessor run(const std::string& src) {
  SimdProcessor p = make_proc();
  assembler::Options opts;
  opts.data_base = 0x1000;
  p.load_program(assembler::assemble(src, opts));
  p.run();
  return p;
}

u32 reg(const SimdProcessor& p, const char* name) {
  return p.scalar().regs().read(
      static_cast<unsigned>(isa::parse_xreg(name)));
}

TEST(ScalarSim, AddiChain) {
  const auto p = run(R"(
    addi t0, zero, 5
    addi t0, t0, 7
    ebreak
  )");
  EXPECT_EQ(reg(p, "t0"), 12u);
}

TEST(ScalarSim, X0IsHardwiredZero) {
  const auto p = run(R"(
    addi zero, zero, 55
    addi t0, zero, 0
    ebreak
  )");
  EXPECT_EQ(reg(p, "t0"), 0u);
}

TEST(ScalarSim, ArithmeticOps) {
  const auto p = run(R"(
    li t0, 100
    li t1, 7
    add a0, t0, t1
    sub a1, t0, t1
    and a2, t0, t1
    or a3, t0, t1
    xor a4, t0, t1
    sll a5, t1, t1
    srl a6, t0, t1
    ebreak
  )");
  EXPECT_EQ(reg(p, "a0"), 107u);
  EXPECT_EQ(reg(p, "a1"), 93u);
  EXPECT_EQ(reg(p, "a2"), 4u);
  EXPECT_EQ(reg(p, "a3"), 103u);
  EXPECT_EQ(reg(p, "a4"), 99u);
  EXPECT_EQ(reg(p, "a5"), 7u << 7);
  EXPECT_EQ(reg(p, "a6"), 0u);
}

TEST(ScalarSim, SignedComparisons) {
  const auto p = run(R"(
    li t0, -1
    li t1, 1
    slt a0, t0, t1
    sltu a1, t0, t1
    slti a2, t0, 0
    sltiu a3, t0, 0
    ebreak
  )");
  EXPECT_EQ(reg(p, "a0"), 1u);  // -1 < 1 signed
  EXPECT_EQ(reg(p, "a1"), 0u);  // 0xFFFFFFFF > 1 unsigned
  EXPECT_EQ(reg(p, "a2"), 1u);
  EXPECT_EQ(reg(p, "a3"), 0u);
}

TEST(ScalarSim, ShiftsArithmetic) {
  const auto p = run(R"(
    li t0, -16
    srai a0, t0, 2
    srli a1, t0, 28
    slli a2, t0, 1
    ebreak
  )");
  EXPECT_EQ(static_cast<i32>(reg(p, "a0")), -4);
  EXPECT_EQ(reg(p, "a1"), 0xFu);
  EXPECT_EQ(static_cast<i32>(reg(p, "a2")), -32);
}

TEST(ScalarSim, LuiAuipc) {
  const auto p = run(R"(
    lui t0, 0x12345
    auipc t1, 0
    ebreak
  )");
  EXPECT_EQ(reg(p, "t0"), 0x12345000u);
  EXPECT_EQ(reg(p, "t1"), 4u);  // auipc at pc=4
}

TEST(ScalarSim, LoadStoreWidths) {
  const auto p = run(R"(
    li t0, 0x1000
    li t1, 0x80FFEE77
    sw t1, 0(t0)
    lw a0, 0(t0)
    lh a1, 0(t0)
    lhu a2, 0(t0)
    lb a3, 3(t0)
    lbu a4, 3(t0)
    sb t1, 8(t0)
    lw a5, 8(t0)
    ebreak
  )");
  EXPECT_EQ(reg(p, "a0"), 0x80FFEE77u);
  EXPECT_EQ(static_cast<i32>(reg(p, "a1")), static_cast<i16>(0xEE77));
  EXPECT_EQ(reg(p, "a2"), 0xEE77u);
  EXPECT_EQ(static_cast<i32>(reg(p, "a3")), static_cast<i8>(0x80));
  EXPECT_EQ(reg(p, "a4"), 0x80u);
  EXPECT_EQ(reg(p, "a5"), 0x77u);
}

TEST(ScalarSim, BranchesTakenAndNot) {
  const auto p = run(R"(
    li t0, 3
    li t1, 5
    li a0, 0
    blt t1, t0, skip      # not taken
    addi a0, a0, 1
skip:
    bge t1, t0, end       # taken
    addi a0, a0, 100
end:
    ebreak
  )");
  EXPECT_EQ(reg(p, "a0"), 1u);
}

TEST(ScalarSim, UnsignedBranches) {
  const auto p = run(R"(
    li t0, -1          # 0xFFFFFFFF
    li t1, 1
    li a0, 0
    bltu t1, t0, one   # taken: 1 < 0xFFFFFFFF
    j end
one:
    addi a0, a0, 1
    bgeu t0, t1, two   # taken
    j end
two:
    addi a0, a0, 1
end:
    ebreak
  )");
  EXPECT_EQ(reg(p, "a0"), 2u);
}

TEST(ScalarSim, JalJalrLinkage) {
  const auto p = run(R"(
    jal ra, func
    addi a0, a0, 100   # runs after return
    ebreak
func:
    addi a0, zero, 1
    ret
  )");
  EXPECT_EQ(reg(p, "a0"), 101u);
}

TEST(ScalarSim, LoopCountsCorrectly) {
  const auto p = run(R"(
    li s3, 0
    li s4, 24
loop:
    addi s3, s3, 1
    blt s3, s4, loop
    ebreak
  )");
  EXPECT_EQ(reg(p, "s3"), 24u);
}

// --- Zbb subset -----------------------------------------------------------------

TEST(ScalarSim, ZbbRotates) {
  const auto p = run(R"(
    li t0, 0x80000001
    li t1, 1
    rol a0, t0, t1
    ror a1, t0, t1
    rori a2, t0, 4
    rori a3, t0, 0
    ebreak
  )");
  EXPECT_EQ(reg(p, "a0"), 0x00000003u);
  EXPECT_EQ(reg(p, "a1"), 0xC0000000u);
  EXPECT_EQ(reg(p, "a2"), 0x18000000u);
  EXPECT_EQ(reg(p, "a3"), 0x80000001u);
}

TEST(ScalarSim, ZbbRotateAmountMasked) {
  const auto p = run(R"(
    li t0, 0x12345678
    li t1, 33          # rotates by 33 & 31 = 1
    ror a0, t0, t1
    li t1, 1
    ror a1, t0, t1
    ebreak
  )");
  EXPECT_EQ(reg(p, "a0"), reg(p, "a1"));
}

TEST(ScalarSim, ZbbLogicWithNegate) {
  const auto p = run(R"(
    li t0, 0b1100
    li t1, 0b1010
    andn a0, t0, t1    # t0 & ~t1
    orn a1, t0, t1     # t0 | ~t1
    xnor a2, t0, t1    # ~(t0 ^ t1)
    ebreak
  )");
  EXPECT_EQ(reg(p, "a0"), 0b0100u);
  EXPECT_EQ(reg(p, "a1"), 0xFFFFFFFDu);
  EXPECT_EQ(reg(p, "a2"), ~0b0110u);
}

// --- M extension -------------------------------------------------------------

TEST(ScalarSim, Multiply) {
  const auto p = run(R"(
    li t0, -7
    li t1, 6
    mul a0, t0, t1
    mulh a1, t0, t1
    mulhu a2, t0, t1
    mulhsu a3, t0, t1
    ebreak
  )");
  EXPECT_EQ(static_cast<i32>(reg(p, "a0")), -42);
  EXPECT_EQ(static_cast<i32>(reg(p, "a1")), -1);  // high of -42
  // mulhu: 0xFFFFFFF9 * 6 = 0x5FFFFFFD6 -> high = 5.
  EXPECT_EQ(reg(p, "a2"), 5u);
  EXPECT_EQ(static_cast<i32>(reg(p, "a3")), -1);
}

TEST(ScalarSim, DivideAndRemainder) {
  const auto p = run(R"(
    li t0, -40
    li t1, 7
    div a0, t0, t1
    rem a1, t0, t1
    divu a2, t1, t1
    remu a3, t0, t1
    ebreak
  )");
  EXPECT_EQ(static_cast<i32>(reg(p, "a0")), -5);
  EXPECT_EQ(static_cast<i32>(reg(p, "a1")), -5);
  EXPECT_EQ(reg(p, "a2"), 1u);
  // remu: 0xFFFFFFD8 % 7.
  EXPECT_EQ(reg(p, "a3"), 4294967256u % 7u);
}

TEST(ScalarSim, DivisionEdgeCases) {
  const auto p = run(R"(
    li t0, 5
    li t1, 0
    div a0, t0, t1      # /0 -> -1
    rem a1, t0, t1      # %0 -> dividend
    divu a2, t0, t1     # /0 -> all ones
    remu a3, t0, t1     # %0 -> dividend
    li t2, 0x80000000   # INT_MIN
    li t3, -1
    div a4, t2, t3      # overflow -> INT_MIN
    rem a5, t2, t3      # overflow -> 0
    ebreak
  )");
  EXPECT_EQ(static_cast<i32>(reg(p, "a0")), -1);
  EXPECT_EQ(reg(p, "a1"), 5u);
  EXPECT_EQ(reg(p, "a2"), 0xFFFFFFFFu);
  EXPECT_EQ(reg(p, "a3"), 5u);
  EXPECT_EQ(reg(p, "a4"), 0x80000000u);
  EXPECT_EQ(reg(p, "a5"), 0u);
}

// --- CSRs / markers -----------------------------------------------------------

TEST(ScalarSim, CycleCsrMonotonic) {
  const auto p = run(R"(
    csrr a0, 0xC00
    nop
    nop
    csrr a1, 0xC00
    ebreak
  )");
  EXPECT_GT(reg(p, "a1"), reg(p, "a0"));
}

TEST(ScalarSim, MarkersRecorded) {
  const auto p = run(R"(
    csrwi 0x7C0, 1
    nop
    nop
    nop
    csrwi 0x7C0, 2
    ebreak
  )");
  ASSERT_EQ(p.markers().size(), 2u);
  EXPECT_EQ(p.markers()[0].id, 1u);
  EXPECT_EQ(p.markers()[1].id, 2u);
  // 3 nops at 1 cycle each; markers are free.
  EXPECT_EQ(p.cycles_between(1, 2), 3u);
}

TEST(ScalarSim, MarkerDeltas) {
  const auto p = run(R"(
    li s3, 0
    li s4, 3
loop:
    csrwi 0x7C0, 7
    nop
    addi s3, s3, 1
    blt s3, s4, loop
    ebreak
  )");
  const auto deltas = p.marker_deltas(7);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0], deltas[1]);
}

// --- cycle model ---------------------------------------------------------------

TEST(ScalarSim, CycleCostsFollowModel) {
  // 2 li (1cc each) + taken branch (3cc) + ebreak.
  SimdProcessor p = make_proc();
  p.load_program(assembler::assemble(R"(
    li t0, 1
    li t1, 1
    beq t0, t1, end
    nop
end:
    ebreak
  )"));
  p.run();
  const auto& cm = p.config().cycle_model;
  EXPECT_EQ(p.cycles(), 2 * cm.alu + cm.branch_taken + cm.system);
}

TEST(ScalarSim, LoadStoreCosts) {
  SimdProcessor p = make_proc();
  p.load_program(assembler::assemble(R"(
    sw zero, 0(zero)
    lw t0, 0(zero)
    ebreak
  )"));
  p.run();
  const auto& cm = p.config().cycle_model;
  EXPECT_EQ(p.cycles(), cm.store + cm.load + cm.system);
}

// --- faults ---------------------------------------------------------------------

TEST(ScalarSim, OutOfBoundsLoadFaults) {
  SimdProcessor p = make_proc();
  p.load_program(assembler::assemble(R"(
    li t0, 0x7FFFF000
    lw t1, 0(t0)
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(ScalarSim, MisalignedAccessFaults) {
  SimdProcessor p = make_proc();
  p.load_program(assembler::assemble(R"(
    li t0, 2
    lw t1, 0(t0)
    ebreak
  )"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(ScalarSim, RunawayProgramHitsWatchdog) {
  ProcessorConfig cfg;
  cfg.vector.ele_num = 5;
  cfg.max_cycles = 1000;
  SimdProcessor p(cfg);
  p.load_program(assembler::assemble("spin: j spin"));
  EXPECT_THROW(p.run(), SimError);
}

TEST(ScalarSim, FetchPastEndFaults) {
  SimdProcessor p = make_proc();
  p.load_program(assembler::assemble("nop"));
  EXPECT_THROW(p.run(), SimError);  // runs off the end (no ebreak)
}

TEST(ScalarSim, StatsCountInstructions) {
  const auto p = run(R"(
    nop
    nop
    ebreak
  )");
  EXPECT_EQ(p.stats().instructions, 3u);
  EXPECT_EQ(p.stats().scalar_instructions, 3u);
  EXPECT_EQ(p.stats().vector_instructions, 0u);
  EXPECT_EQ(p.stats().opcode_counts.at("addi"), 2u);
}

TEST(ScalarSim, CycleProfileAccountsForAllCycles) {
  const auto p = run(R"(
    li t0, 10
    li t1, 0
loop:
    addi t1, t1, 1
    blt t1, t0, loop
    ebreak
  )");
  u64 sum = 0;
  for (const auto& [mnem, cyc] : p.stats().opcode_cycles) {
    (void)mnem;
    sum += cyc;
  }
  EXPECT_EQ(sum, p.cycles());
  EXPECT_FALSE(p.stats().cycle_profile().empty());
  EXPECT_NE(p.stats().to_csv().find("addi,"), std::string::npos);
}

TEST(ScalarSim, ResetRunStateAllowsRerun) {
  SimdProcessor p = make_proc();
  p.load_program(assembler::assemble(R"(
    addi t0, t0, 1
    ebreak
  )"));
  p.run();
  const u64 first = p.cycles();
  p.reset_run_state();
  p.run();
  EXPECT_EQ(p.cycles(), first);
}

}  // namespace
}  // namespace kvx::sim
