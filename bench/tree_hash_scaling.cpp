// Single-message parallelism via tree hashing: the paper's SN-state
// parallelism (§4.2) only helps when there are SN independent messages;
// KangarooTwelve-style tree hashing manufactures that independence from ONE
// long message. This bench measures accelerator cycles for hashing a 64 KiB
// message as a function of SN, on the 12-round TurboSHAKE configuration.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/core/parallel_tree_hash.hpp"

int main() {
  using namespace kvx;
  using namespace kvx::core;

  kvx::bench::header(
      "Tree hashing a single 64 KiB message (TurboSHAKE128 leaves, 8 KiB "
      "chunks)\ncycles vs. SN — single-message use of the multi-state "
      "parallelism");

  const std::vector<u8> msg = kvx::bench::random_bytes(64 * 1024, /*seed=*/1);

  std::printf("  SN | leaf batches | permutations | accel cycles | vs SN=1\n");
  kvx::bench::rule();
  u64 base = 0;
  for (unsigned sn : {1u, 2u, 4u, 7u}) {  // 7 leaves in a 64 KiB message
    ParallelTreeHash accel(Arch::k64Lmul8, 5 * sn);
    const auto digest = accel.hash(msg, 32);
    (void)digest;
    const auto& st = accel.stats();
    if (sn == 1) base = st.accelerator_cycles;
    std::printf("  %2u | %12llu | %12llu | %12llu | %5.2fx\n", sn,
                static_cast<unsigned long long>(st.permutation_batches),
                static_cast<unsigned long long>(st.permutations),
                static_cast<unsigned long long>(st.accelerator_cycles),
                static_cast<double>(base) /
                    static_cast<double>(st.accelerator_cycles));
  }

  kvx::bench::rule();
  std::printf(
      "The 7 chaining-value leaves dominate the work; with SN = 7 they run\n"
      "in one lockstep batch, leaving the (serial) first-chunk + final-node\n"
      "absorption as the Amdahl floor. Tree hashing is how the paper's\n"
      "future-work PQC integration (§5) can exploit wide vector register\n"
      "files even for one message.\n");
  return 0;
}
