// Reproduces **Table 8** of the paper: the 32-bit architecture (LMUL = 8)
// at EleNum ∈ {5, 15, 30} against the five published 32-bit designs and the
// Ibex C-code software baseline.
//
// Two baseline rows are printed: the paper's own measured PQ-M4-C-on-Ibex
// constant (2908 cycles/round) and our hand-generated RV32IM assembly
// baseline measured on the simulated scalar core — the latter is faster
// than compiled C, which makes our reported speedups conservative.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/baseline/scalar_keccak.hpp"
#include "kvx/core/area_model.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/reference_designs.hpp"
#include "kvx/core/vector_keccak.hpp"

int main() {
  using namespace kvx;
  using namespace kvx::core;

  kvx::bench::header(
      "Table 8 — 32-bit architectures vs. 32-bit references\n"
      "columns: cycles/round | cycles/byte | throughput (bits/cycle x10^3) | area (slices)");

  for (const ReferenceDesign& r : table8_references()) {
    std::printf("%-28s | %11s | %11s | %12.2f | %7s\n", r.name.data(),
                kvx::bench::opt_str(r.cycles_per_round, "%.0f").c_str(),
                kvx::bench::opt_str(r.cycles_per_byte).c_str(),
                r.throughput_e3, kvx::bench::opt_str(r.area_slices).c_str());
  }
  kvx::bench::rule();

  // Software baselines on the scalar core.
  const auto& paper_c = paper_ibex_ccode();
  std::printf("%-28s | %11.0f | %11.2f | %12.2f | %7u\n",
              "Ibex core C-code (paper)", *paper_c.cycles_per_round,
              *paper_c.cycles_per_byte, paper_c.throughput_e3,
              *paper_c.area_slices);

  baseline::ScalarKeccak scalar_asm;
  const u64 perm_scalar = scalar_asm.measure_permutation_cycles();
  std::printf("%-28s | %11llu | %11.2f | %12.2f | %7u\n",
              "Ibex scalar asm (ours)",
              static_cast<unsigned long long>(scalar_asm.measure_round_cycles()),
              cycles_per_byte(perm_scalar), throughput_e3(perm_scalar, 1),
              AreaModel::scalar_core_slices());
  kvx::bench::rule();

  struct PaperRow {
    double round, cpb, tput;
    unsigned area;
  };
  static constexpr PaperRow kPaper[3] = {
      {147, 18.1, 441.98, 6359},
      {147, 18.1, 1325.97, 23408},
      {147, 18.1, 2651.93, 48036},
  };
  double best_tput = 0;
  for (int k = 0; k < 3; ++k) {
    const unsigned ele_num = (k == 0) ? 5u : (k == 1) ? 15u : 30u;
    const unsigned sn = ele_num / 5;
    VectorKeccak vk({Arch::k32Lmul8, ele_num, 24});
    const u64 round = vk.measure_round_cycles();
    const u64 perm = vk.measure_permutation_cycles();
    const double tput = throughput_e3(perm, sn);
    best_tput = std::max(best_tput, tput);
    std::printf("32b LMUL=8 EleNum=%-2u (%u st.)  | %11llu | %11.2f | %12.2f | %7u\n",
                ele_num, sn, static_cast<unsigned long long>(round),
                cycles_per_byte(perm), tput,
                AreaModel::simd_processor_slices(32, ele_num));
    std::printf("          (paper)            | %11.0f | %11.2f | %12.2f | %7u\n",
                kPaper[k].round, kPaper[k].cpb, kPaper[k].tput, kPaper[k].area);
  }

  kvx::bench::rule();
  std::printf("Headline ratios for 32-bit EleNum=30 (paper §4.2 in parentheses):\n");
  std::printf("  vs. C-code on Ibex (paper constant) : %6.1fx  (117.9x)\n",
              best_tput / paper_c.throughput_e3);
  std::printf("  vs. our scalar asm baseline         : %6.1fx  (conservative)\n",
              best_tput / throughput_e3(perm_scalar, 1));
  std::printf("  vs. MIPS Co-processor ISE           : %6.1fx  (45.7x)\n",
              best_tput / table8_references()[2].throughput_e3);
  std::printf("  vs. DASIP                           : %6.1fx  (43.2x)\n",
              best_tput / table8_references()[4].throughput_e3);
  return 0;
}
