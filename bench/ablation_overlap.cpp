// Design-space study: blocking vs. decoupled vector-unit hand-off.
//
// The paper's processor hands every vector instruction from Ibex to the
// vector unit and waits. A decoupled VPU (one scalar dispatch cycle, vector
// work in the shadow) hides the scalar loop overhead (addi/blt) and the
// inter-instruction dispatch gap. This bench quantifies the benefit on the
// Keccak programs under otherwise identical latencies — an upper bound,
// since the model assumes no scalar use of in-flight vector results.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/core/program_builder.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/sim/processor.hpp"

namespace {

using namespace kvx;
using namespace kvx::core;

u64 permutation_cycles(Arch arch, bool decoupled) {
  const KeccakProgram prog = build_keccak_program({arch, 5, 24});
  sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = arch_elen(arch);
  cfg.vector.ele_num = 5;
  cfg.cycle_model.decoupled_vpu = decoupled;
  sim::SimdProcessor proc(cfg);
  proc.load_program(prog.image);
  proc.run();
  return proc.cycles_between(Markers::kPermStart, Markers::kPermEnd);
}

}  // namespace

int main() {
  kvx::bench::header(
      "Ablation — blocking vs. decoupled VPU hand-off (permutation cycles)");

  std::printf("%-18s | blocking | decoupled | gain\n", "architecture");
  kvx::bench::rule();
  for (Arch arch : {Arch::k64Lmul1, Arch::k64Lmul8, Arch::k32Lmul8,
                    Arch::k64Fused}) {
    const u64 blocking = permutation_cycles(arch, false);
    const u64 decoupled = permutation_cycles(arch, true);
    std::printf("%-18s | %8llu | %9llu | %.2fx\n",
                std::string(arch_name(arch)).c_str(),
                static_cast<unsigned long long>(blocking),
                static_cast<unsigned long long>(decoupled),
                static_cast<double>(blocking) / static_cast<double>(decoupled));
  }

  kvx::bench::rule();
  std::printf(
      "Finding: the VPU is the bottleneck in every Keccak program — vector\n"
      "instructions are issued back-to-back, so decoupling only hides the\n"
      "scalar loop control (~24 cycles per permutation, ~1-2%%). The paper's\n"
      "simple blocking hand-off therefore costs almost nothing for this\n"
      "workload; a decoupled VPU would only pay off for code that mixes\n"
      "substantial scalar work between vector instructions (e.g. the\n"
      "rejection sampling around SHAKE in the Kyber workload of §1).\n");
  return 0;
}
