// Throughput/area scaling sweep over EleNum — the paper's Tables 7/8 probe
// EleNum ∈ {5, 15, 30}; this sweep fills in the curve and extends it to 60,
// showing that latency is flat in SN while throughput scales linearly (the
// §4.2 observation) and area grows with the lane array.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/core/area_model.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/vector_keccak.hpp"

int main() {
  using namespace kvx;
  using namespace kvx::core;

  kvx::bench::header(
      "Scaling sweep: EleNum -> latency (flat), throughput (linear), area\n"
      "columns per arch: perm cycles | throughput x10^3 | slices | tput/slice");

  for (Arch arch : {Arch::k64Lmul8, Arch::k32Lmul8}) {
    std::printf("\n%s:\n", std::string(arch_name(arch)).c_str());
    std::printf("  EleNum  SN | perm cyc | tput x10^3 |  slices | tput/kslice\n");
    kvx::bench::rule();
    for (unsigned ele_num = 5; ele_num <= 60; ele_num += 5) {
      const unsigned sn = ele_num / 5;
      VectorKeccak vk({arch, ele_num, 24});
      const u64 perm = vk.measure_permutation_cycles();
      const unsigned slices =
          AreaModel::simd_processor_slices(arch_elen(arch), ele_num);
      const double tput = throughput_e3(perm, sn);
      std::printf("  %6u %3u | %8llu | %10.2f | %7u | %11.2f\n", ele_num, sn,
                  static_cast<unsigned long long>(perm), tput, slices,
                  tput / (slices / 1000.0));
    }
  }

  std::printf(
      "\nNote: throughput-per-slice peaks at small EleNum and flattens — the\n"
      "register file and lane array dominate area growth while throughput\n"
      "scales exactly with SN (latency is SN-independent, paper §4.2).\n");
  return 0;
}
