// Ablation: the paper's custom instruction set vs. standard RVV 1.0 only.
//
// The paper argues (§3.3) that RVV lacks vector rotations and that its
// slide instructions "define behaviors that are not applicable" to the
// modulo-five Keccak layout. This bench quantifies the claim by running our
// pure-RVV Keccak program (vrgather slides, shift/or rotations, memory
// round-trip π, staged ι rows) against the custom-ISE programs on identical
// hardware budgets.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/vector_keccak.hpp"

int main() {
  using namespace kvx;
  using namespace kvx::core;

  kvx::bench::header(
      "Ablation — custom Keccak ISE vs. pure standard RVV 1.0 (64-bit)");

  struct Row {
    Arch arch;
    const char* note;
  };
  const Row rows[] = {
      {Arch::k64PureRvv, "standard RVV only (no custom instructions)"},
      {Arch::k64Lmul1, "custom ISE, Algorithm 2"},
      {Arch::k64Lmul8, "custom ISE, Algorithm 3"},
  };

  std::printf("%-18s | round cc | perm cc | vec instrs/perm | note\n", "variant");
  kvx::bench::rule();
  u64 pure_round = 0, pure_perm = 0;
  for (const Row& r : rows) {
    VectorKeccak vk({r.arch, 5, 24});
    const u64 round = vk.measure_round_cycles();
    std::vector<keccak::State> states(1);
    vk.permute(states);
    const u64 perm = vk.last_timing().permutation_cycles;
    const u64 vinst = vk.processor().stats().vector_instructions;
    if (r.arch == Arch::k64PureRvv) {
      pure_round = round;
      pure_perm = perm;
    }
    std::printf("%-18s | %8llu | %7llu | %15llu | %s\n",
                std::string(arch_name(r.arch)).c_str(),
                static_cast<unsigned long long>(round),
                static_cast<unsigned long long>(perm),
                static_cast<unsigned long long>(vinst), r.note);
  }

  kvx::bench::rule();
  VectorKeccak l1({Arch::k64Lmul1, 5, 24});
  VectorKeccak l8({Arch::k64Lmul8, 5, 24});
  std::printf("custom ISE benefit at equal VLEN: %.2fx (vs Alg.2), %.2fx (vs Alg.3)\n",
              static_cast<double>(pure_perm) /
                  static_cast<double>(l1.measure_permutation_cycles()),
              static_cast<double>(pure_perm) /
                  static_cast<double>(l8.measure_permutation_cycles()));
  std::printf(
      "\nWhere pure RVV loses (one round, from the step-breakdown bench):\n"
      "  * rho: 3 instructions per plane (vsll.vv/vsrl.vv/vor.vv) instead of 1\n"
      "  * pi : memory round-trip (5 scatter stores + 5 reloads + index loads)\n"
      "         instead of the column-mode vpi write-back\n"
      "  * iota: staged RC row load + vxor instead of the viota broadcast\n"
      "  * plus %u extra vector registers pinned for index/shift constants\n",
      13u);
  return 0;
}
