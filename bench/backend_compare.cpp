// Interpreter vs compiled-trace vs fused-trace execution backend:
// host-throughput grid.
//
// Same engine workload run three times per (SN, threads) grid point, once
// per execution backend. The digests of every cell are verified against the
// host golden model AND across backends (the engine-level differential
// check). Emits BENCH_fused.json next to the table so both host speedups
// (trace over interpreter, fused over trace) are tracked across PRs.
//
// Fast by default (CI runs every bench binary as a smoke test); pass
// --check to fail with exit 1 on any digest inequality, if a faster
// backend tier is slower than the one below it in aggregate (fused < trace,
// or trace < interpreter), or if the thread-scaling gate fails (see below).
//
// Thread-scaling section: the fused backend at SN=6 is rerun over
// threads {1,2,4,8} with a large submit_batch workload, and the 8-thread
// over 1-thread speedup is gated. The required minimum is hardware-aware —
// demanding 3x on an 8-hardware-thread host but only "no collapse" on a
// 1-core CI runner, where real speedup is physically impossible — and can
// be overridden via KVX_SCALING_MIN_SPEEDUP for noisy CI hosts. Results are
// written to BENCH_scaling.json (committed, like BENCH_fused.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/sim/compiled_trace.hpp"
#include "kvx/sim/trace_fusion.hpp"

namespace {

using namespace kvx;
using Clock = std::chrono::steady_clock;

constexpr usize kJobs = 96;
constexpr usize kBytes = 200;  // 2 SHA3-256 rate blocks per job

struct Cell {
  unsigned sn = 0;
  unsigned threads = 0;
  double interp_mbs = 0;
  double trace_mbs = 0;
  double fused_mbs = 0;
};

double run_once(sim::ExecBackend backend, unsigned sn, unsigned threads,
                std::span<const engine::HashJob> jobs,
                std::span<const std::vector<u8>> expected,
                double* fusion_coverage = nullptr) {
  engine::EngineConfig cfg;
  cfg.threads = threads;
  cfg.accel = {core::Arch::k64Lmul8, 5 * sn, 24};
  cfg.accel.backend = backend;
  engine::BatchHashEngine eng(cfg);  // construction (and any trace compile)
                                     // excluded; compile time is reported
                                     // separately from the trace cache
  const auto t0 = Clock::now();
  eng.submit_all(jobs);
  const auto outs = eng.drain();
  const double s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (usize i = 0; i < jobs.size(); ++i) {
    if (outs[i] != expected[i]) {
      std::printf("DIGEST MISMATCH (backend=%s SN=%u threads=%u job=%zu)\n",
                  std::string(sim::backend_name(backend)).c_str(), sn, threads,
                  i);
      std::exit(1);
    }
  }
  if (fusion_coverage != nullptr) {
    *fusion_coverage = eng.stats().fusion_coverage;
  }
  return s;
}

struct ScalingPoint {
  unsigned threads = 0;
  double mbs = 0;
  double speedup = 0;  ///< over the 1-thread row
};

/// Minimum required 8-over-1-thread fused speedup. Precedence: the
/// KVX_SCALING_MIN_SPEEDUP env var (CI noise / special hosts), else a
/// default scaled to what the host can physically deliver.
double scaling_min_speedup(const char** source) {
  if (const char* env = std::getenv("KVX_SCALING_MIN_SPEEDUP")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) {
      *source = "env:KVX_SCALING_MIN_SPEEDUP";
      return v;
    }
    std::printf("ignoring malformed KVX_SCALING_MIN_SPEEDUP='%s'\n", env);
  }
  *source = "hardware_concurrency default";
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 8) return 3.0;
  if (hw >= 4) return 2.0;
  if (hw >= 2) return 1.2;
  // Single-hardware-thread host: 8 workers cannot be faster than 1; gate
  // only that the sharded scheduler does not *collapse* under
  // oversubscription (the v1 mutex queue did).
  return 0.5;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  std::vector<engine::HashJob> jobs(kJobs);
  std::vector<std::vector<u8>> expected(kJobs);
  for (usize i = 0; i < kJobs; ++i) {
    const auto msg = bench::random_bytes(kBytes, /*seed=*/7100 + i);
    jobs[i] = {engine::Algo::kSha3_256, msg};
    expected[i] = keccak::hash(keccak::Sha3Function::kSha3_256, msg, 32);
  }
  const double mb = static_cast<double>(kJobs * kBytes) / 1e6;

  sim::TraceCache::global().clear();  // report this run's compiles only

  bench::header("Execution backend comparison — interpreter vs compiled "
                "trace vs fused trace (SHA3-256, 96 x 200 B)");
  std::printf("host hardware threads: %u | fused host SIMD: %s\n\n",
              std::thread::hardware_concurrency(),
              sim::fusion_host_simd() ? "on" : "off");
  std::printf("%-18s | interp MB/s | trace MB/s | fused MB/s | f/t\n",
              "config");
  bench::rule();

  std::vector<Cell> cells;
  double interp_total_s = 0;
  double trace_total_s = 0;
  double fused_total_s = 0;
  double coverage = 0;
  for (const unsigned sn : {1u, 3u, 6u}) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      Cell c;
      c.sn = sn;
      c.threads = threads;
      const double is =
          run_once(sim::ExecBackend::kInterpreter, sn, threads, jobs, expected);
      const double ts = run_once(sim::ExecBackend::kCompiledTrace, sn, threads,
                                 jobs, expected);
      const double fs = run_once(sim::ExecBackend::kFusedTrace, sn, threads,
                                 jobs, expected, &coverage);
      interp_total_s += is;
      trace_total_s += ts;
      fused_total_s += fs;
      c.interp_mbs = mb / is;
      c.trace_mbs = mb / ts;
      c.fused_mbs = mb / fs;
      cells.push_back(c);
      std::printf("SN=%u  %u thread%s  | %11.2f | %10.2f | %10.2f | %5.2fx\n",
                  sn, threads, threads == 1 ? " " : "s", c.interp_mbs,
                  c.trace_mbs, c.fused_mbs, ts / fs);
    }
    bench::rule();
  }
  const double n = static_cast<double>(cells.size());
  const double agg_interp = mb * n / interp_total_s;
  const double agg_trace = mb * n / trace_total_s;
  const double agg_fused = mb * n / fused_total_s;
  const sim::TraceCacheStats tc = sim::TraceCache::global().stats();
  std::printf("aggregate: interpreter %.2f MB/s, trace %.2f MB/s (%.2fx), "
              "fused %.2f MB/s (%.2fx over trace)\n",
              agg_interp, agg_trace, interp_total_s / trace_total_s, agg_fused,
              trace_total_s / fused_total_s);
  std::printf("trace cache: %llu compiles (%.2f ms), %llu fusions (%.2f ms), "
              "%llu hits, %llu rejected | fusion coverage %.1f%%\n",
              static_cast<unsigned long long>(tc.compiles),
              static_cast<double>(tc.compile_ns) / 1e6,
              static_cast<unsigned long long>(tc.fusions),
              static_cast<double>(tc.fuse_ns) / 1e6,
              static_cast<unsigned long long>(tc.hits),
              static_cast<unsigned long long>(tc.failures), 100.0 * coverage);

  std::FILE* f = std::fopen("BENCH_fused.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"backend_compare\",\n");
    std::fprintf(f, "  \"jobs\": %zu,\n  \"bytes_per_job\": %zu,\n", kJobs,
                 kBytes);
    std::fprintf(f, "  \"host_simd\": %s,\n",
                 sim::fusion_host_simd() ? "true" : "false");
    std::fprintf(f, "  \"grid\": [\n");
    for (usize i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(
          f,
          "    {\"sn\": %u, \"threads\": %u, \"interpreter_mbs\": %.3f, "
          "\"trace_mbs\": %.3f, \"fused_mbs\": %.3f, "
          "\"fused_over_trace\": %.3f}%s\n",
          c.sn, c.threads, c.interp_mbs, c.trace_mbs, c.fused_mbs,
          c.fused_mbs / c.trace_mbs, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"aggregate\": {\"interpreter_mbs\": %.3f, \"trace_mbs\": "
                 "%.3f, \"fused_mbs\": %.3f, \"trace_speedup\": %.3f, "
                 "\"fused_over_trace\": %.3f},\n",
                 agg_interp, agg_trace, agg_fused,
                 interp_total_s / trace_total_s,
                 trace_total_s / fused_total_s);
    std::fprintf(f, "  \"fusion_coverage\": %.4f,\n", coverage);
    std::fprintf(f,
                 "  \"trace_cache\": {\"compiles\": %llu, \"fusions\": %llu, "
                 "\"hits\": %llu, \"failures\": %llu, \"compile_ms\": %.3f, "
                 "\"fuse_ms\": %.3f}\n}\n",
                 static_cast<unsigned long long>(tc.compiles),
                 static_cast<unsigned long long>(tc.fusions),
                 static_cast<unsigned long long>(tc.hits),
                 static_cast<unsigned long long>(tc.failures),
                 static_cast<double>(tc.compile_ns) / 1e6,
                 static_cast<double>(tc.fuse_ns) / 1e6);
    std::fclose(f);
    std::printf("wrote BENCH_fused.json\n");
  }

  // --- thread scaling (fused, SN=6, bulk submit) -------------------------------

  constexpr usize kScaleJobs = 4096;
  constexpr unsigned kScaleSn = 6;
  std::vector<engine::HashJob> scale_jobs(kScaleJobs);
  std::vector<std::vector<u8>> scale_expected(kScaleJobs);
  for (usize i = 0; i < kScaleJobs; ++i) {
    // Reuse the 96 distinct messages cyclically: digest checking stays a
    // table lookup while the submitted volume is large enough that
    // scheduling — not the accelerator — is what the cell measures.
    scale_jobs[i] = jobs[i % kJobs];
    scale_expected[i] = expected[i % kJobs];
  }
  bench::header("Thread scaling — fused backend, SN=6, bulk submit "
                "(4096 x 200 B)");
  std::printf("%-10s | MB/s      | speedup over 1 thread\n", "threads");
  bench::rule();
  std::vector<ScalingPoint> scaling;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const double s = run_once(sim::ExecBackend::kFusedTrace, kScaleSn, threads,
                              scale_jobs, scale_expected);
    ScalingPoint p;
    p.threads = threads;
    p.mbs = static_cast<double>(kScaleJobs * kBytes) / 1e6 / s;
    p.speedup = scaling.empty() ? 1.0 : p.mbs / scaling.front().mbs;
    scaling.push_back(p);
    std::printf("%-10u | %9.2f | %5.2fx\n", threads, p.mbs, p.speedup);
  }
  const char* gate_source = nullptr;
  const double min_speedup = scaling_min_speedup(&gate_source);
  const double speedup_8 = scaling.back().speedup;
  const bool scaling_ok = speedup_8 >= min_speedup;
  std::printf("8-thread speedup %.2fx, required >= %.2fx (%s): %s\n",
              speedup_8, min_speedup, gate_source,
              scaling_ok ? "ok" : "BELOW GATE");

  std::FILE* sf = std::fopen("BENCH_scaling.json", "w");
  if (sf != nullptr) {
    std::fprintf(sf, "{\n  \"bench\": \"backend_compare_scaling\",\n");
    std::fprintf(sf, "  \"backend\": \"fused\",\n  \"sn\": %u,\n", kScaleSn);
    std::fprintf(sf, "  \"jobs\": %zu,\n  \"bytes_per_job\": %zu,\n",
                 kScaleJobs, kBytes);
    std::fprintf(sf, "  \"host_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(sf, "  \"grid\": [\n");
    for (usize i = 0; i < scaling.size(); ++i) {
      const ScalingPoint& p = scaling[i];
      std::fprintf(sf,
                   "    {\"threads\": %u, \"mbs\": %.3f, \"speedup\": %.3f}%s\n",
                   p.threads, p.mbs, p.speedup,
                   i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(sf, "  ],\n");
    std::fprintf(sf,
                 "  \"gate\": {\"min_speedup\": %.3f, \"source\": \"%s\", "
                 "\"pass\": %s}\n}\n",
                 min_speedup, gate_source, scaling_ok ? "true" : "false");
    std::fclose(sf);
    std::printf("wrote BENCH_scaling.json\n");
  }

  if (check && agg_trace < agg_interp) {
    std::printf("CHECK FAILED: compiled-trace backend slower than the "
                "interpreter in aggregate\n");
    return 1;
  }
  if (check && agg_fused < agg_trace) {
    std::printf("CHECK FAILED: fused backend slower than the compiled trace "
                "in aggregate\n");
    return 1;
  }
  if (check && !scaling_ok) {
    std::printf("CHECK FAILED: 8-thread fused speedup %.2fx is below the "
                "%.2fx scaling gate (%s)\n",
                speedup_8, min_speedup, gate_source);
    return 1;
  }
  return 0;
}
