// Interpreter vs compiled-trace vs fused-trace vs host-SIMD vs jit
// execution backend: host-throughput grid.
//
// Same engine workload run five times per (SN, threads) grid point, once
// per execution backend. The digests of every cell are verified against the
// host golden model AND across backends (the engine-level differential
// check). Emits BENCH_fused.json next to the table so the host speedups of
// every tier (trace over interpreter, fused over trace, host-simd over
// fused) are tracked across PRs, plus BENCH_host_simd.json with the
// host-SIMD dispatch ISA and per-cell speedups, plus BENCH_jit.json with
// the native-emission ISA/code size and jit-over-host-simd speedups.
//
// Fast by default (CI runs every bench binary as a smoke test); pass
// --check to fail with exit 1 on any digest inequality, if a faster
// backend tier is slower than the one below it in aggregate (host-simd <
// fused, fused < trace, or trace < interpreter), or if the thread-scaling
// gate fails (see below). The jit tier is gated on the isolated
// permutation-dispatch section instead of the engine aggregate (the engine
// grid measures scheduling on few-core hosts): jit perms/s must be >=
// KVX_JIT_MIN_SPEEDUP x host-simd at every SN >= 3. The default is
// hardware-aware — 1.0 when the host actually emits native code, gate
// disabled when the jit tier demotes (non-x86-64, scalar-only build).
//
// Thread-scaling section: the fused backend at SN=6 is rerun over
// threads {1,2,4,8} with a large submit_batch workload, and the 8-thread
// over 1-thread speedup is gated. The required minimum is hardware-aware —
// demanding 3x on an 8-hardware-thread host but only "no collapse" on a
// 1-core CI runner, where real speedup is physically impossible — and can
// be overridden via KVX_SCALING_MIN_SPEEDUP for noisy CI hosts. Results are
// written to BENCH_scaling.json (committed, like BENCH_fused.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/obs/flight_recorder.hpp"
#include "kvx/sim/compiled_trace.hpp"
#include "kvx/sim/host_simd.hpp"
#include "kvx/sim/trace_fusion.hpp"

namespace {

using namespace kvx;
using Clock = std::chrono::steady_clock;

constexpr usize kJobs = 96;
constexpr usize kBytes = 200;  // 2 SHA3-256 rate blocks per job

struct Cell {
  unsigned sn = 0;
  unsigned threads = 0;
  double interp_mbs = 0;
  double trace_mbs = 0;
  double fused_mbs = 0;
  double hostsimd_mbs = 0;
  double jit_mbs = 0;
};

double run_once(sim::ExecBackend backend, unsigned sn, unsigned threads,
                std::span<const engine::HashJob> jobs,
                std::span<const std::vector<u8>> expected,
                double* fusion_coverage = nullptr,
                double* hostsimd_coverage = nullptr) {
  engine::EngineConfig cfg;
  cfg.threads = threads;
  cfg.accel = {core::Arch::k64Lmul8, 5 * sn, 24};
  cfg.accel.backend = backend;
  engine::BatchHashEngine eng(cfg);  // construction (and any trace compile)
                                     // excluded; compile time is reported
                                     // separately from the trace cache
  const auto t0 = Clock::now();
  eng.submit_all(jobs);
  const auto outs = eng.drain();
  const double s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (usize i = 0; i < jobs.size(); ++i) {
    if (outs[i] != expected[i]) {
      std::printf("DIGEST MISMATCH (backend=%s SN=%u threads=%u job=%zu)\n",
                  std::string(sim::backend_name(backend)).c_str(), sn, threads,
                  i);
      std::exit(1);
    }
  }
  if (fusion_coverage != nullptr) {
    *fusion_coverage = eng.stats().fusion_coverage;
  }
  if (hostsimd_coverage != nullptr) {
    *hostsimd_coverage = eng.stats().host_simd_coverage;
  }
  return s;
}

struct ScalingPoint {
  unsigned threads = 0;
  double mbs = 0;
  double speedup = 0;  ///< over the 1-thread row
};

/// Minimum required 8-over-1-thread fused speedup. Precedence: the
/// KVX_SCALING_MIN_SPEEDUP env var (CI noise / special hosts), else a
/// default scaled to what the host can physically deliver.
double scaling_min_speedup(const char** source) {
  if (const char* env = std::getenv("KVX_SCALING_MIN_SPEEDUP")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) {
      *source = "env:KVX_SCALING_MIN_SPEEDUP";
      return v;
    }
    std::printf("ignoring malformed KVX_SCALING_MIN_SPEEDUP='%s'\n", env);
  }
  *source = "hardware_concurrency default";
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 8) return 3.0;
  if (hw >= 4) return 2.0;
  if (hw >= 2) return 1.2;
  // Single-hardware-thread host: 8 workers cannot be faster than 1; gate
  // only that the sharded scheduler does not *collapse* under
  // oversubscription (the v1 mutex queue did).
  return 0.5;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
  }

  std::vector<engine::HashJob> jobs(kJobs);
  std::vector<std::vector<u8>> expected(kJobs);
  for (usize i = 0; i < kJobs; ++i) {
    const auto msg = bench::random_bytes(kBytes, /*seed=*/7100 + i);
    jobs[i] = {engine::Algo::kSha3_256, msg};
    expected[i] = keccak::hash(keccak::Sha3Function::kSha3_256, msg, 32);
  }
  const double mb = static_cast<double>(kJobs * kBytes) / 1e6;

  sim::TraceCache::global().clear();  // report this run's compiles only

  const std::string isa_name(
      sim::host_simd_isa_name(sim::host_simd_active_isa()));
  // Probe whether the jit tier actually emits on this host (it demotes to
  // host-simd on non-x86-64 hosts, scalar-only builds and KVX_JIT=OFF);
  // the jit gate and BENCH_jit.json report are keyed off this.
  bool jit_active = false;
  usize jit_code_bytes = 0;
  std::string jit_isa_name = "none";
  {
    core::VectorKeccakConfig jc{core::Arch::k64Lmul8, 5 * 6, 24};
    jc.backend = sim::ExecBackend::kJit;
    core::VectorKeccak jvk(jc);
    jit_active = jvk.active_backend() == sim::ExecBackend::kJit;
    jit_code_bytes = jvk.jit_code_bytes();
    if (jvk.jit_isa().has_value()) {
      jit_isa_name = std::string(sim::host_simd_isa_name(*jvk.jit_isa()));
    }
  }

  bench::header("Execution backend comparison — interpreter vs compiled "
                "trace vs fused trace vs host-SIMD vs jit "
                "(SHA3-256, 96 x 200 B)");
  std::printf("host hardware threads: %u | fused host SIMD: %s | "
              "host-simd dispatch ISA: %s | jit: %s\n\n",
              std::thread::hardware_concurrency(),
              sim::fusion_host_simd() ? "on" : "off", isa_name.c_str(),
              jit_active ? jit_isa_name.c_str() : "demoted");
  std::printf("%-18s | interp MB/s | trace MB/s | fused MB/s | h-simd MB/s "
              "| jit MB/s | j/hs\n",
              "config");
  bench::rule();

  std::vector<Cell> cells;
  double interp_total_s = 0;
  double trace_total_s = 0;
  double fused_total_s = 0;
  double hostsimd_total_s = 0;
  double jit_total_s = 0;
  double coverage = 0;
  double hs_coverage = 0;
  for (const unsigned sn : {1u, 3u, 6u}) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      Cell c;
      c.sn = sn;
      c.threads = threads;
      const double is =
          run_once(sim::ExecBackend::kInterpreter, sn, threads, jobs, expected);
      const double ts = run_once(sim::ExecBackend::kCompiledTrace, sn, threads,
                                 jobs, expected);
      const double fs = run_once(sim::ExecBackend::kFusedTrace, sn, threads,
                                 jobs, expected, &coverage);
      const double hs = run_once(sim::ExecBackend::kHostSimd, sn, threads,
                                 jobs, expected, nullptr, &hs_coverage);
      const double js =
          run_once(sim::ExecBackend::kJit, sn, threads, jobs, expected);
      interp_total_s += is;
      trace_total_s += ts;
      fused_total_s += fs;
      hostsimd_total_s += hs;
      jit_total_s += js;
      c.interp_mbs = mb / is;
      c.trace_mbs = mb / ts;
      c.fused_mbs = mb / fs;
      c.hostsimd_mbs = mb / hs;
      c.jit_mbs = mb / js;
      cells.push_back(c);
      std::printf("SN=%u  %u thread%s  | %11.2f | %10.2f | %10.2f | %11.2f "
                  "| %8.2f | %5.2fx\n",
                  sn, threads, threads == 1 ? " " : "s", c.interp_mbs,
                  c.trace_mbs, c.fused_mbs, c.hostsimd_mbs, c.jit_mbs,
                  hs / js);
    }
    bench::rule();
  }
  const double n = static_cast<double>(cells.size());
  const double agg_interp = mb * n / interp_total_s;
  const double agg_trace = mb * n / trace_total_s;
  const double agg_fused = mb * n / fused_total_s;
  const double agg_hostsimd = mb * n / hostsimd_total_s;
  const double agg_jit = mb * n / jit_total_s;
  const sim::TraceCacheStats tc = sim::TraceCache::global().stats();
  std::printf("aggregate: interpreter %.2f MB/s, trace %.2f MB/s (%.2fx), "
              "fused %.2f MB/s (%.2fx over trace), host-simd %.2f MB/s "
              "(%.2fx over fused), jit %.2f MB/s (%.2fx over host-simd)\n",
              agg_interp, agg_trace, interp_total_s / trace_total_s, agg_fused,
              trace_total_s / fused_total_s, agg_hostsimd,
              fused_total_s / hostsimd_total_s, agg_jit,
              hostsimd_total_s / jit_total_s);
  std::printf("trace cache: %llu compiles (%.2f ms), %llu fusions (%.2f ms), "
              "%llu lowerings (%.2f ms), %llu jit emissions (%.2f ms), "
              "%llu hits, %llu rejected | fusion coverage %.1f%% | host-simd "
              "coverage %.1f%% | %llu entries, %llu resident bytes\n",
              static_cast<unsigned long long>(tc.compiles),
              static_cast<double>(tc.compile_ns) / 1e6,
              static_cast<unsigned long long>(tc.fusions),
              static_cast<double>(tc.fuse_ns) / 1e6,
              static_cast<unsigned long long>(tc.lowerings),
              static_cast<double>(tc.lower_ns) / 1e6,
              static_cast<unsigned long long>(tc.jit_compiles),
              static_cast<double>(tc.jit_ns) / 1e6,
              static_cast<unsigned long long>(tc.hits),
              static_cast<unsigned long long>(tc.failures), 100.0 * coverage,
              100.0 * hs_coverage,
              static_cast<unsigned long long>(tc.entries),
              static_cast<unsigned long long>(tc.resident_bytes));

  std::FILE* f = std::fopen("BENCH_fused.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"backend_compare\",\n");
    std::fprintf(f, "  \"jobs\": %zu,\n  \"bytes_per_job\": %zu,\n", kJobs,
                 kBytes);
    std::fprintf(f, "  \"host_simd\": %s,\n",
                 sim::fusion_host_simd() ? "true" : "false");
    std::fprintf(f, "  \"grid\": [\n");
    for (usize i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(
          f,
          "    {\"sn\": %u, \"threads\": %u, \"interpreter_mbs\": %.3f, "
          "\"trace_mbs\": %.3f, \"fused_mbs\": %.3f, \"hostsimd_mbs\": %.3f, "
          "\"fused_over_trace\": %.3f, \"hostsimd_over_fused\": %.3f}%s\n",
          c.sn, c.threads, c.interp_mbs, c.trace_mbs, c.fused_mbs,
          c.hostsimd_mbs, c.fused_mbs / c.trace_mbs,
          c.hostsimd_mbs / c.fused_mbs, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"aggregate\": {\"interpreter_mbs\": %.3f, \"trace_mbs\": "
                 "%.3f, \"fused_mbs\": %.3f, \"hostsimd_mbs\": %.3f, "
                 "\"trace_speedup\": %.3f, \"fused_over_trace\": %.3f, "
                 "\"hostsimd_over_fused\": %.3f},\n",
                 agg_interp, agg_trace, agg_fused, agg_hostsimd,
                 interp_total_s / trace_total_s,
                 trace_total_s / fused_total_s,
                 fused_total_s / hostsimd_total_s);
    std::fprintf(f, "  \"fusion_coverage\": %.4f,\n", coverage);
    std::fprintf(f,
                 "  \"trace_cache\": {\"compiles\": %llu, \"fusions\": %llu, "
                 "\"hits\": %llu, \"failures\": %llu, \"compile_ms\": %.3f, "
                 "\"fuse_ms\": %.3f}\n}\n",
                 static_cast<unsigned long long>(tc.compiles),
                 static_cast<unsigned long long>(tc.fusions),
                 static_cast<unsigned long long>(tc.hits),
                 static_cast<unsigned long long>(tc.failures),
                 static_cast<double>(tc.compile_ns) / 1e6,
                 static_cast<double>(tc.fuse_ns) / 1e6);
    std::fclose(f);
    std::printf("wrote BENCH_fused.json\n");
  }

  // --- thread scaling (fused, SN=6, bulk submit) -------------------------------

  constexpr usize kScaleJobs = 4096;
  constexpr unsigned kScaleSn = 6;
  std::vector<engine::HashJob> scale_jobs(kScaleJobs);
  std::vector<std::vector<u8>> scale_expected(kScaleJobs);
  for (usize i = 0; i < kScaleJobs; ++i) {
    // Reuse the 96 distinct messages cyclically: digest checking stays a
    // table lookup while the submitted volume is large enough that
    // scheduling — not the accelerator — is what the cell measures.
    scale_jobs[i] = jobs[i % kJobs];
    scale_expected[i] = expected[i % kJobs];
  }
  bench::header("Thread scaling — fused backend, SN=6, bulk submit "
                "(4096 x 200 B)");
  std::printf("%-10s | MB/s      | speedup over 1 thread\n", "threads");
  bench::rule();
  std::vector<ScalingPoint> scaling;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const double s = run_once(sim::ExecBackend::kFusedTrace, kScaleSn, threads,
                              scale_jobs, scale_expected);
    ScalingPoint p;
    p.threads = threads;
    p.mbs = static_cast<double>(kScaleJobs * kBytes) / 1e6 / s;
    p.speedup = scaling.empty() ? 1.0 : p.mbs / scaling.front().mbs;
    scaling.push_back(p);
    std::printf("%-10u | %9.2f | %5.2fx\n", threads, p.mbs, p.speedup);
  }
  const char* gate_source = nullptr;
  const double min_speedup = scaling_min_speedup(&gate_source);
  const double speedup_8 = scaling.back().speedup;
  const bool scaling_ok = speedup_8 >= min_speedup;
  std::printf("8-thread speedup %.2fx, required >= %.2fx (%s): %s\n",
              speedup_8, min_speedup, gate_source,
              scaling_ok ? "ok" : "BELOW GATE");

  // --- flight-recorder overhead ------------------------------------------------
  //
  // The recorder is always-on by design, so its cost is gated, not assumed:
  // the single-threaded fused SN=6 workload runs with the recorder enabled
  // and disabled, interleaved best-of-3 (interleaving cancels thermal and
  // cache drift; best-of cancels scheduler noise). The enabled run must be
  // within KVX_FLIGHTREC_MAX_OVERHEAD (default 5%) of the disabled run.
  bench::header("Flight-recorder overhead — fused backend, SN=6, 1 thread");
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  double best_on = 1e100;
  double best_off = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    recorder.set_enabled(true);
    best_on = std::min(best_on,
                       run_once(sim::ExecBackend::kFusedTrace, kScaleSn, 1,
                                scale_jobs, scale_expected));
    recorder.set_enabled(false);
    best_off = std::min(best_off,
                        run_once(sim::ExecBackend::kFusedTrace, kScaleSn, 1,
                                 scale_jobs, scale_expected));
  }
  recorder.set_enabled(true);
  double max_overhead = 0.05;
  const char* fr_gate_source = "default";
  if (const char* env = std::getenv("KVX_FLIGHTREC_MAX_OVERHEAD")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) {
      max_overhead = v;
      fr_gate_source = "env:KVX_FLIGHTREC_MAX_OVERHEAD";
    } else {
      std::printf("ignoring malformed KVX_FLIGHTREC_MAX_OVERHEAD='%s'\n", env);
    }
  }
  const double overhead = best_on / best_off - 1.0;
  const bool flightrec_ok = overhead <= max_overhead;
  std::printf("recorder on  %7.2f MB/s (best of 3)\n",
              static_cast<double>(kScaleJobs * kBytes) / 1e6 / best_on);
  std::printf("recorder off %7.2f MB/s (best of 3)\n",
              static_cast<double>(kScaleJobs * kBytes) / 1e6 / best_off);
  std::printf("overhead %+.2f%%, allowed <= %.2f%% (%s): %s\n",
              overhead * 100.0, max_overhead * 100.0, fr_gate_source,
              flightrec_ok ? "ok" : "ABOVE GATE");
  std::FILE* ff = std::fopen("BENCH_flightrec.json", "w");
  if (ff != nullptr) {
    std::fprintf(ff, "{\n  \"bench\": \"backend_compare_flightrec\",\n");
    std::fprintf(ff, "  \"backend\": \"fused\",\n  \"sn\": %u,\n", kScaleSn);
    std::fprintf(ff, "  \"jobs\": %zu,\n  \"bytes_per_job\": %zu,\n",
                 kScaleJobs, kBytes);
    std::fprintf(ff,
                 "  \"enabled_mbs\": %.3f,\n  \"disabled_mbs\": %.3f,\n",
                 static_cast<double>(kScaleJobs * kBytes) / 1e6 / best_on,
                 static_cast<double>(kScaleJobs * kBytes) / 1e6 / best_off);
    std::fprintf(ff, "  \"overhead\": %.4f,\n", overhead);
    std::fprintf(ff,
                 "  \"gate\": {\"max_overhead\": %.4f, \"source\": \"%s\", "
                 "\"pass\": %s}\n}\n",
                 max_overhead, fr_gate_source, flightrec_ok ? "true" : "false");
    std::fclose(ff);
    std::printf("wrote BENCH_flightrec.json\n");
  }

  // --- permutation dispatch: host-simd vs fused --------------------------------
  //
  // The engine grid above includes sponge bookkeeping, queueing and result
  // routing, which dilute the accelerator-dispatch speedup (most visibly on
  // few-core hosts where the scheduler is the bottleneck). This section
  // isolates what the host-SIMD tier actually lowers: the permute()
  // dispatch itself, single-threaded. The gate is env-overridable via
  // KVX_HOSTSIMD_MIN_SPEEDUP (default 1.0: never slower than fused; on
  // AVX2+ hosts the measured ratio at SN>=6 should be >= 2).
  bench::header(
      "Permutation dispatch — jit vs host-simd vs fused, single thread");
  std::printf("%-6s | fused perms/s | h-simd perms/s | hs/f  | jit perms/s "
              "| j/hs\n",
              "SN");
  bench::rule();
  double min_hs_speedup = 1.0;
  const char* hs_gate_source = "default";
  if (const char* env = std::getenv("KVX_HOSTSIMD_MIN_SPEEDUP")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v > 0.0) {
      min_hs_speedup = v;
      hs_gate_source = "env:KVX_HOSTSIMD_MIN_SPEEDUP";
    } else {
      std::printf("ignoring malformed KVX_HOSTSIMD_MIN_SPEEDUP='%s'\n", env);
    }
  }
  // jit-over-host-simd dispatch gate. Hardware-aware default: the emitted
  // code must never be slower than the plan walker it replaces (1.0) when
  // the host emits at all; on hosts where the jit tier demotes the two
  // columns measure the same code, so the gate is disabled (0.0).
  double min_jit_speedup = jit_active ? 1.0 : 0.0;
  const char* jit_gate_source =
      jit_active ? "default (jit active)" : "disabled (jit demoted)";
  if (const char* env = std::getenv("KVX_JIT_MIN_SPEEDUP")) {
    char* end = nullptr;
    const double v = std::strtod(env, &end);
    if (end != env && v >= 0.0) {
      min_jit_speedup = v;
      jit_gate_source = "env:KVX_JIT_MIN_SPEEDUP";
    } else {
      std::printf("ignoring malformed KVX_JIT_MIN_SPEEDUP='%s'\n", env);
    }
  }
  struct DispatchPoint {
    unsigned sn;
    double fused_ps;
    double hostsimd_ps;
    double jit_ps;
  };
  std::vector<DispatchPoint> dispatch;
  bool dispatch_ok = true;
  bool jit_dispatch_ok = true;
  for (const unsigned sn : {1u, 3u, 6u, 8u}) {
    const auto perms_per_sec = [&](sim::ExecBackend backend) {
      core::VectorKeccakConfig c{core::Arch::k64Lmul8, 5 * sn, 24};
      c.backend = backend;
      core::VectorKeccak vk(c);
      std::vector<keccak::State> states(sn);
      for (usize s = 0; s < states.size(); ++s) {
        for (unsigned x = 0; x < 5; ++x) {
          for (unsigned y = 0; y < 5; ++y) {
            states[s].lane(x, y) = bench::random_lanes(1, 900 + s * 25)[0];
          }
        }
      }
      for (int w = 0; w < 50; ++w) vk.permute(states);  // warm
      constexpr int kIters = 2000;
      const auto t0 = Clock::now();
      for (int it = 0; it < kIters; ++it) vk.permute(states);
      const double s = std::chrono::duration<double>(Clock::now() - t0).count();
      return static_cast<double>(kIters) * sn / s;
    };
    DispatchPoint p{sn, perms_per_sec(sim::ExecBackend::kFusedTrace),
                    perms_per_sec(sim::ExecBackend::kHostSimd),
                    perms_per_sec(sim::ExecBackend::kJit)};
    dispatch.push_back(p);
    const double ratio = p.hostsimd_ps / p.fused_ps;
    const double jit_ratio = p.jit_ps / p.hostsimd_ps;
    // SN=1 barely exercises the packed runners (one state per group) and
    // its ratio is dominated by measurement noise: report it, gate SN>=3.
    if (sn >= 3 && ratio < min_hs_speedup) dispatch_ok = false;
    if (sn >= 3 && jit_ratio < min_jit_speedup) jit_dispatch_ok = false;
    std::printf("SN=%-3u | %13.0f | %14.0f | %4.2fx | %11.0f | %4.2fx\n", sn,
                p.fused_ps, p.hostsimd_ps, ratio, p.jit_ps, jit_ratio);
  }
  std::printf("dispatch speedup required >= %.2fx per SN>=3 (%s): %s\n",
              min_hs_speedup, hs_gate_source,
              dispatch_ok ? "ok" : "BELOW GATE");
  std::printf("jit dispatch speedup required >= %.2fx per SN>=3 (%s): %s\n",
              min_jit_speedup, jit_gate_source,
              jit_dispatch_ok ? "ok" : "BELOW GATE");

  // Host-SIMD-specific record: dispatch ISA, lowering coverage, per-cell
  // engine speedups over the fused tier (the tier it lowers), and the
  // isolated permutation-dispatch grid.
  std::FILE* hf = std::fopen("BENCH_host_simd.json", "w");
  if (hf != nullptr) {
    std::fprintf(hf, "{\n  \"bench\": \"backend_compare_host_simd\",\n");
    std::fprintf(hf, "  \"isa\": \"%s\",\n", isa_name.c_str());
    std::fprintf(hf, "  \"pack_width\": %u,\n",
                 sim::host_simd_pack_width(sim::host_simd_active_isa()));
    std::fprintf(hf, "  \"host_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(hf, "  \"jobs\": %zu,\n  \"bytes_per_job\": %zu,\n", kJobs,
                 kBytes);
    std::fprintf(hf, "  \"lowered_coverage\": %.4f,\n", hs_coverage);
    std::fprintf(hf, "  \"engine_grid\": [\n");
    for (usize i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(hf,
                   "    {\"sn\": %u, \"threads\": %u, \"hostsimd_mbs\": %.3f, "
                   "\"fused_mbs\": %.3f, \"speedup_over_fused\": %.3f}%s\n",
                   c.sn, c.threads, c.hostsimd_mbs, c.fused_mbs,
                   c.hostsimd_mbs / c.fused_mbs,
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(hf, "  ],\n");
    std::fprintf(hf, "  \"dispatch_grid\": [\n");
    for (usize i = 0; i < dispatch.size(); ++i) {
      const DispatchPoint& p = dispatch[i];
      std::fprintf(hf,
                   "    {\"sn\": %u, \"fused_perms_per_sec\": %.0f, "
                   "\"hostsimd_perms_per_sec\": %.0f, "
                   "\"speedup_over_fused\": %.3f}%s\n",
                   p.sn, p.fused_ps, p.hostsimd_ps, p.hostsimd_ps / p.fused_ps,
                   i + 1 < dispatch.size() ? "," : "");
    }
    std::fprintf(hf, "  ],\n");
    std::fprintf(hf,
                 "  \"aggregate\": {\"hostsimd_mbs\": %.3f, \"fused_mbs\": "
                 "%.3f, \"speedup_over_fused\": %.3f},\n",
                 agg_hostsimd, agg_fused, fused_total_s / hostsimd_total_s);
    std::fprintf(hf,
                 "  \"dispatch_gate\": {\"min_speedup\": %.3f, \"source\": "
                 "\"%s\", \"pass\": %s}\n}\n",
                 min_hs_speedup, hs_gate_source,
                 dispatch_ok ? "true" : "false");
    std::fclose(hf);
    std::printf("wrote BENCH_host_simd.json\n");
  }

  // Jit-specific record: emission ISA and code size, per-cell engine
  // speedups over the host-SIMD tier (the tier it compiles), and the
  // isolated permutation-dispatch grid with the jit gate verdict.
  std::FILE* jf = std::fopen("BENCH_jit.json", "w");
  if (jf != nullptr) {
    std::fprintf(jf, "{\n  \"bench\": \"backend_compare_jit\",\n");
    std::fprintf(jf, "  \"active\": %s,\n", jit_active ? "true" : "false");
    std::fprintf(jf, "  \"isa\": \"%s\",\n", jit_isa_name.c_str());
    std::fprintf(jf, "  \"code_bytes\": %zu,\n", jit_code_bytes);
    std::fprintf(jf, "  \"host_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(jf, "  \"jobs\": %zu,\n  \"bytes_per_job\": %zu,\n", kJobs,
                 kBytes);
    std::fprintf(jf, "  \"engine_grid\": [\n");
    for (usize i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(jf,
                   "    {\"sn\": %u, \"threads\": %u, \"jit_mbs\": %.3f, "
                   "\"hostsimd_mbs\": %.3f, \"speedup_over_hostsimd\": "
                   "%.3f}%s\n",
                   c.sn, c.threads, c.jit_mbs, c.hostsimd_mbs,
                   c.jit_mbs / c.hostsimd_mbs, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(jf, "  ],\n");
    std::fprintf(jf, "  \"dispatch_grid\": [\n");
    for (usize i = 0; i < dispatch.size(); ++i) {
      const DispatchPoint& p = dispatch[i];
      std::fprintf(jf,
                   "    {\"sn\": %u, \"hostsimd_perms_per_sec\": %.0f, "
                   "\"jit_perms_per_sec\": %.0f, "
                   "\"speedup_over_hostsimd\": %.3f}%s\n",
                   p.sn, p.hostsimd_ps, p.jit_ps, p.jit_ps / p.hostsimd_ps,
                   i + 1 < dispatch.size() ? "," : "");
    }
    std::fprintf(jf, "  ],\n");
    std::fprintf(jf,
                 "  \"aggregate\": {\"jit_mbs\": %.3f, \"hostsimd_mbs\": "
                 "%.3f, \"speedup_over_hostsimd\": %.3f},\n",
                 agg_jit, agg_hostsimd, hostsimd_total_s / jit_total_s);
    std::fprintf(jf,
                 "  \"emission\": {\"count\": %llu, \"ms\": %.3f},\n",
                 static_cast<unsigned long long>(tc.jit_compiles),
                 static_cast<double>(tc.jit_ns) / 1e6);
    std::fprintf(jf,
                 "  \"dispatch_gate\": {\"min_speedup\": %.3f, \"source\": "
                 "\"%s\", \"pass\": %s}\n}\n",
                 min_jit_speedup, jit_gate_source,
                 jit_dispatch_ok ? "true" : "false");
    std::fclose(jf);
    std::printf("wrote BENCH_jit.json\n");
  }

  std::FILE* sf = std::fopen("BENCH_scaling.json", "w");
  if (sf != nullptr) {
    std::fprintf(sf, "{\n  \"bench\": \"backend_compare_scaling\",\n");
    std::fprintf(sf, "  \"backend\": \"fused\",\n  \"sn\": %u,\n", kScaleSn);
    std::fprintf(sf, "  \"jobs\": %zu,\n  \"bytes_per_job\": %zu,\n",
                 kScaleJobs, kBytes);
    std::fprintf(sf, "  \"host_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(sf, "  \"grid\": [\n");
    for (usize i = 0; i < scaling.size(); ++i) {
      const ScalingPoint& p = scaling[i];
      std::fprintf(sf,
                   "    {\"threads\": %u, \"mbs\": %.3f, \"speedup\": %.3f}%s\n",
                   p.threads, p.mbs, p.speedup,
                   i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(sf, "  ],\n");
    std::fprintf(sf,
                 "  \"gate\": {\"min_speedup\": %.3f, \"source\": \"%s\", "
                 "\"pass\": %s}\n}\n",
                 min_speedup, gate_source, scaling_ok ? "true" : "false");
    std::fclose(sf);
    std::printf("wrote BENCH_scaling.json\n");
  }

  if (check && agg_trace < agg_interp) {
    std::printf("CHECK FAILED: compiled-trace backend slower than the "
                "interpreter in aggregate\n");
    return 1;
  }
  if (check && agg_fused < agg_trace) {
    std::printf("CHECK FAILED: fused backend slower than the compiled trace "
                "in aggregate\n");
    return 1;
  }
  if (check && agg_hostsimd < agg_fused) {
    std::printf("CHECK FAILED: host-simd backend slower than the fused trace "
                "in aggregate\n");
    return 1;
  }
  if (check && !scaling_ok) {
    std::printf("CHECK FAILED: 8-thread fused speedup %.2fx is below the "
                "%.2fx scaling gate (%s)\n",
                speedup_8, min_speedup, gate_source);
    return 1;
  }
  if (check && !dispatch_ok) {
    std::printf("CHECK FAILED: host-simd permutation dispatch below the "
                "%.2fx gate (%s)\n",
                min_hs_speedup, hs_gate_source);
    return 1;
  }
  if (check && !jit_dispatch_ok) {
    std::printf("CHECK FAILED: jit permutation dispatch below the "
                "%.2fx gate (%s)\n",
                min_jit_speedup, jit_gate_source);
    return 1;
  }
  if (check && !flightrec_ok) {
    std::printf("CHECK FAILED: flight-recorder overhead %.2f%% above the "
                "%.2f%% gate (%s)\n",
                overhead * 100.0, max_overhead * 100.0, fr_gate_source);
    return 1;
  }
  return 0;
}
