// Regenerates every headline comparison ratio the paper's §4.2 reports in
// prose, from our own measured cycle counts and the calibrated area model.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/baseline/scalar_keccak.hpp"
#include "kvx/core/area_model.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/reference_designs.hpp"
#include "kvx/core/vector_keccak.hpp"

int main() {
  using namespace kvx;
  using namespace kvx::core;

  kvx::bench::header("Paper §4.2 comparison ratios — measured vs. published");

  VectorKeccak v64l1({Arch::k64Lmul1, 30, 24});
  VectorKeccak v64l8({Arch::k64Lmul8, 30, 24});
  VectorKeccak v32l8({Arch::k32Lmul8, 30, 24});
  const u64 p64l1 = v64l1.measure_permutation_cycles();
  const u64 p64l8 = v64l8.measure_permutation_cycles();
  const u64 p32l8 = v32l8.measure_permutation_cycles();

  const auto print = [](const char* what, double measured, double paper) {
    std::printf("  %-52s %7.2fx   (paper: %.1fx)\n", what, measured, paper);
  };

  std::printf("LMUL=1 vs LMUL=8 (64-bit):\n");
  print("throughput gain from LMUL=8",
        static_cast<double>(p64l1) / static_cast<double>(p64l8), 1.35);

  std::printf("64-bit vs 32-bit (both LMUL=8):\n");
  print("64-bit speedup over 32-bit",
        static_cast<double>(p32l8) / static_cast<double>(p64l8), 2.0);
  print("area ratio 64-bit/32-bit at EleNum=30",
        static_cast<double>(AreaModel::simd_processor_slices(64, 30)) /
            AreaModel::simd_processor_slices(32, 30),
        1.0);

  std::printf("32-bit (EleNum=30, 6 states) vs software C-code:\n");
  const double t32 = throughput_e3(p32l8, 6);
  print("speedup vs paper's Ibex C-code constant",
        t32 / paper_ibex_ccode().throughput_e3, 117.9);
  print("area cost vs bare Ibex",
        static_cast<double>(AreaModel::simd_processor_slices(32, 30)) /
            AreaModel::scalar_core_slices(),
        111.2);
  baseline::ScalarKeccak scalar_asm;
  print("speedup vs our measured scalar-asm baseline",
        t32 / throughput_e3(scalar_asm.measure_permutation_cycles(), 1), 117.9);

  std::printf("32-bit (EleNum=30) vs published ISEs:\n");
  print("vs MIPS Co-processor ISE [10]",
        t32 / table8_references()[2].throughput_e3, 45.7);
  print("area vs MIPS Co-processor ISE",
        static_cast<double>(AreaModel::simd_processor_slices(32, 30)) /
            *table8_references()[2].area_slices,
        6.3);
  print("vs DASIP [19]", t32 / table8_references()[4].throughput_e3, 43.2);
  print("area vs DASIP",
        static_cast<double>(AreaModel::simd_processor_slices(32, 30)) /
            *table8_references()[4].area_slices,
        31.5);

  std::printf("64-bit (EleNum=30, LMUL=8) vs vector extensions [20]:\n");
  print("throughput vs Rawat & Schaumont",
        throughput_e3(p64l8, 6) / rawat_vector_ise().throughput_e3, 5.3);

  return 0;
}
