// Host wall-clock benchmarks of the golden-model substrate (sanity check
// that the reference library itself is production-quality) and of the
// simulator itself (simulation throughput, relevant for users scaling the
// parameter sweeps).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "kvx/baseline/scalar_keccak.hpp"
#include "kvx/core/vector_keccak.hpp"
#include "kvx/keccak/permutation.hpp"
#include "kvx/keccak/sha3.hpp"

namespace {

using namespace kvx;

void BM_PermuteReference(benchmark::State& state) {
  keccak::State s;
  for (auto _ : state) {
    keccak::permute(s);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 200);
}
BENCHMARK(BM_PermuteReference);

void BM_PermuteFastHost(benchmark::State& state) {
  keccak::State s;
  for (auto _ : state) {
    keccak::permute_fast(s);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 200);
}
BENCHMARK(BM_PermuteFastHost);

void BM_Sha3_256(benchmark::State& state) {
  const std::vector<u8> msg =
      bench::random_bytes(static_cast<usize>(state.range(0)), /*seed=*/1);
  for (auto _ : state) {
    auto d = keccak::sha3_256(msg);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha3_256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Shake128Squeeze(benchmark::State& state) {
  keccak::Xof xof(keccak::Sha3Function::kShake128);
  xof.absorb("seed material");
  std::vector<u8> out(static_cast<usize>(state.range(0)));
  for (auto _ : state) {
    xof.squeeze(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Shake128Squeeze)->Arg(168)->Arg(1344);

/// Simulator throughput: simulated permutations per host second.
void BM_SimulatedPermutation64Lmul8(benchmark::State& state) {
  core::VectorKeccak vk({core::Arch::k64Lmul8,
                         static_cast<unsigned>(state.range(0)), 24});
  std::vector<keccak::State> states(vk.config().sn());
  for (auto _ : state) {
    vk.permute(states);
    benchmark::DoNotOptimize(states.data());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          vk.config().sn());
}
BENCHMARK(BM_SimulatedPermutation64Lmul8)->Arg(5)->Arg(30);

void BM_SimulatedScalarBaseline(benchmark::State& state) {
  baseline::ScalarKeccak scalar;
  keccak::State s;
  for (auto _ : state) {
    scalar.permute(s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SimulatedScalarBaseline);

}  // namespace

BENCHMARK_MAIN();
