// Quantifies the LMUL strategy choice the paper makes in §4.1:
//
//   "Another way is choosing LMUL to be 4 and 1. [...] We do not do this,
//    because we would need to configure the LMUL value in an alternating
//    way, which would consume more time."
//
// We implement that rejected 4+1 split and measure exactly how much more
// time the alternating vsetvli reconfiguration consumes.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/vector_keccak.hpp"

int main() {
  using namespace kvx;
  using namespace kvx::core;

  kvx::bench::header(
      "LMUL strategy ablation (64-bit architecture, paper §4.1)");

  std::printf("%-18s | round cc | perm cc | vsetvli/round | note\n", "strategy");
  kvx::bench::rule();
  struct Row {
    Arch arch;
    const char* note;
  };
  const Row rows[] = {
      {Arch::k64Lmul1, "one register per instruction (Algorithm 2)"},
      {Arch::k64Lmul4Plus1, "the 4+1 split the paper rejects"},
      {Arch::k64Lmul8, "five planes per instruction (Algorithm 3)"},
  };
  u64 perm_41 = 0, perm_8 = 0;
  for (const Row& r : rows) {
    VectorKeccak vk({r.arch, 5, 24});
    const u64 round = vk.measure_round_cycles();
    const u64 perm = vk.measure_permutation_cycles();
    if (r.arch == Arch::k64Lmul4Plus1) perm_41 = perm;
    if (r.arch == Arch::k64Lmul8) perm_8 = perm;
    // Count vsetvli executions per round from the program stats.
    std::vector<keccak::State> states(1);
    vk.permute(states);
    const u64 vsetvli = vk.processor().stats().opcode_counts.at("vsetvli");
    std::printf("%-18s | %8llu | %7llu | %13.1f | %s\n",
                std::string(arch_name(r.arch)).c_str(),
                static_cast<unsigned long long>(round),
                static_cast<unsigned long long>(perm),
                static_cast<double>(vsetvli) / 24.0, r.note);
  }
  kvx::bench::rule();
  std::printf(
      "The 4+1 split pays 6 vsetvli reconfigurations per round (vs 2 for\n"
      "LMUL=8) plus the serialized fifth plane: %.0f%% slower than LMUL=8 —\n"
      "the paper's decision to use a single LMUL=8 group is confirmed.\n",
      100.0 * (static_cast<double>(perm_41) / static_cast<double>(perm_8) - 1.0));
  return 0;
}
