// Ablation for the paper's §3.2 design choice: hi/lo lane split (chosen by
// the paper, with paired rotation instructions in hardware) vs. the classic
// bit-interleaving representation (cheap software rotations but conversion
// cost at every SHA-3 entry/exit).
//
// Google-benchmark measures host wall-clock for the software-visible parts:
// rotation throughput in each representation and the interleave/deinterleave
// conversion the hi/lo split avoids.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "kvx/baseline/scalar_keccak.hpp"

#include "kvx/common/bits.hpp"
#include "kvx/keccak/interleave.hpp"
#include "kvx/keccak/permutation.hpp"

namespace {

using namespace kvx;
using namespace kvx::keccak;

std::vector<u64> test_lanes(usize n) { return bench::random_lanes(n, 7); }

/// Rotate all 25 lanes by the rho offsets in the plain 64-bit representation.
void BM_RotatePlain64(benchmark::State& state) {
  auto lanes = test_lanes(25);
  const auto& off = rho_offsets();
  for (auto _ : state) {
    for (usize i = 0; i < 25; ++i) {
      lanes[i] = rotl64(lanes[i], off[i / 5][i % 5]);
    }
    benchmark::DoNotOptimize(lanes.data());
  }
}
BENCHMARK(BM_RotatePlain64);

/// The same rotations on hi/lo split pairs (what a 32-bit datapath without
/// the paper's paired instructions must do in software).
void BM_RotateHiLoSplit(benchmark::State& state) {
  const auto lanes = test_lanes(25);
  std::vector<HiLo> split(25);
  for (usize i = 0; i < 25; ++i) split[i] = split_hilo(lanes[i]);
  const auto& off = rho_offsets();
  for (auto _ : state) {
    for (usize i = 0; i < 25; ++i) {
      split[i] = rotl_hilo(split[i], off[i / 5][i % 5]);
    }
    benchmark::DoNotOptimize(split.data());
  }
}
BENCHMARK(BM_RotateHiLoSplit);

/// The same rotations in the bit-interleaved representation (two 32-bit
/// rotations each — the technique the paper declines in favour of hardware
/// support).
void BM_RotateInterleaved(benchmark::State& state) {
  const auto lanes = test_lanes(25);
  std::vector<Interleaved> inter(25);
  for (usize i = 0; i < 25; ++i) inter[i] = interleave(lanes[i]);
  const auto& off = rho_offsets();
  for (auto _ : state) {
    for (usize i = 0; i < 25; ++i) {
      inter[i] = rotl_interleaved(inter[i], off[i / 5][i % 5]);
    }
    benchmark::DoNotOptimize(inter.data());
  }
}
BENCHMARK(BM_RotateInterleaved);

/// Conversion overhead bit interleaving pays at every SHA-3 boundary when
/// interoperating with byte-oriented callers (the paper's argument for the
/// hi/lo split: "extra efforts are required to separate the lane...").
void BM_InterleaveConversionPerState(benchmark::State& state) {
  const auto lanes = test_lanes(25);
  for (auto _ : state) {
    u64 acc = 0;
    for (usize i = 0; i < 25; ++i) {
      acc ^= deinterleave(interleave(lanes[i]));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_InterleaveConversionPerState);

/// Host-side reference: the full permutation, for scale.
void BM_PermuteFast(benchmark::State& state) {
  State s;
  for (auto _ : state) {
    permute_fast(s);
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 200);
}
BENCHMARK(BM_PermuteFast);

}  // namespace

int main(int argc, char** argv) {
  // First the cycle-accurate comparison on the simulated scalar core: the
  // same Keccak with hi/lo lanes (plain RV32IM) vs bit-interleaved lanes
  // (RV32IM + Zbb rotates), i.e. the representation trade-off of paper
  // SS3.2 measured end to end.
  {
    using kvx::baseline::Flavor;
    using kvx::baseline::ScalarKeccak;
    ScalarKeccak hilo(24, Flavor::kHiLo);
    ScalarKeccak inter(24, Flavor::kInterleavedZbb);
    const auto r_hilo = hilo.measure_round_cycles();
    const auto r_inter = inter.measure_round_cycles();
    std::printf(
        "Simulated scalar core, cycles per Keccak round:\n"
        "  hi/lo split (RV32IM)              : %llu\n"
        "  bit-interleaved (RV32IM + Zbb)    : %llu  (%.2fx faster, but pays\n"
        "                                        a conversion at every SHA-3\n"
        "                                        boundary - see below)\n\n",
        static_cast<unsigned long long>(r_hilo),
        static_cast<unsigned long long>(r_inter),
        static_cast<double>(r_hilo) / static_cast<double>(r_inter));
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
