// Shared table-printing helpers for the paper-reproduction benchmarks.
#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "kvx/common/types.hpp"

namespace kvx::bench {

inline void header(const char* title) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================================\n");
}

inline void rule() {
  std::printf("--------------------------------------------------------------------------------\n");
}

inline std::string opt_str(std::optional<double> v, const char* fmt = "%.1f") {
  if (!v) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, fmt, *v);
  return buf;
}

inline std::string opt_str(std::optional<unsigned> v) {
  if (!v) return "(sim only)";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u", *v);
  return buf;
}

}  // namespace kvx::bench
