// Shared table-printing helpers for the paper-reproduction benchmarks.
//
// Determinism policy: benchmark *inputs* must be identical across runs and
// PRs so the emitted tables (and any BENCH_*.json trajectories) are
// comparable — all pseudo-random data comes from kvx/common/rng.hpp
// (SplitMix64) with fixed literal seeds, never std::random_device or
// time-based seeding. Only wall-clock timings may vary.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "kvx/common/rng.hpp"
#include "kvx/common/types.hpp"

namespace kvx::bench {

/// Deterministic pseudo-random message bytes (fixed seed => fixed bytes).
inline std::vector<u8> random_bytes(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<u8> out(n);
  for (u8& b : out) b = static_cast<u8>(rng.next());
  return out;
}

/// Deterministic pseudo-random 64-bit lanes (e.g. raw Keccak states).
inline std::vector<u64> random_lanes(usize n, u64 seed) {
  SplitMix64 rng(seed);
  std::vector<u64> out(n);
  for (u64& x : out) x = rng.next();
  return out;
}

inline void header(const char* title) {
  std::printf("\n================================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================================\n");
}

inline void rule() {
  std::printf("--------------------------------------------------------------------------------\n");
}

inline std::string opt_str(std::optional<double> v, const char* fmt = "%.1f") {
  if (!v) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, fmt, *v);
  return buf;
}

inline std::string opt_str(std::optional<unsigned> v) {
  if (!v) return "(sim only)";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u", *v);
  return buf;
}

}  // namespace kvx::bench
