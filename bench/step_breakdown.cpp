// Per-step-mapping cycle breakdown of the Keccak permutation for every
// architecture variant (the paper's Algorithm 2/3 "# N cc" annotations,
// measured via the free step markers).
//
// Two views of the same markers:
//   1. Single-round programs keep the fine-grained 5-step split (θ, ρ, π,
//      χ, ι) read directly with cycles_between — ρ includes its vsetvli,
//      ι its switch back to LMUL=1 — matching the paper's annotations.
//   2. Full 24-round loop programs go through the production attribution
//      API (core::attribute_step_cycles over the marker stream, the same
//      code path the engine's --stats table uses); per-round numbers are
//      the 24-round totals / 24, so loop-control overhead shows up as the
//      gap between this view and the single-round one.
//
// Expected from the paper: 64-bit LMUL=1 round = θ 26 + ρ 10 + π 15 +
// χ 50 + ι 2 = 103 cc; LMUL=8 = θ 26 + ρ 8 + π 7 + χ 30 + ι 4 = 75 cc.
// Emits BENCH_steps.json with the attributed 24-round totals per arch.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kvx/core/program_builder.hpp"
#include "kvx/core/step_attribution.hpp"
#include "kvx/sim/processor.hpp"

namespace {

using namespace kvx;
using namespace kvx::core;

struct ArchRow {
  std::string name;
  obs::StepCycleStats steps;
};

}  // namespace

int main() {
  const Arch kArches[] = {Arch::k64Lmul1, Arch::k64Lmul8, Arch::k32Lmul8,
                          Arch::k64PureRvv, Arch::k64Fused};

  kvx::bench::header(
      "Cycle breakdown per step mapping (one round, EleNum=5)\n"
      "theta | rho | pi | chi | iota | total  — cycles");

  for (Arch arch : kArches) {
    const KeccakProgram prog =
        build_keccak_program({arch, 5, 24, /*single_round=*/true});
    sim::ProcessorConfig cfg;
    cfg.vector.elen_bits = arch_elen(arch);
    cfg.vector.ele_num = 5;
    sim::SimdProcessor proc(cfg);
    proc.load_program(prog.image);
    proc.run();

    const u64 theta = proc.cycles_between(Markers::kRoundStart, Markers::kStepRho);
    const u64 rho = proc.cycles_between(Markers::kStepRho, Markers::kStepPi);
    const u64 pi = proc.cycles_between(Markers::kStepPi, Markers::kStepChi);
    const u64 chi = proc.cycles_between(Markers::kStepChi, Markers::kStepIota);
    const u64 iota = proc.cycles_between(Markers::kStepIota, Markers::kRoundEnd);
    const u64 total = proc.cycles_between(Markers::kRoundStart, Markers::kRoundEnd);
    std::printf("%-18s | %5llu | %4llu | %4llu | %4llu | %4llu | %5llu\n",
                std::string(arch_name(arch)).c_str(),
                static_cast<unsigned long long>(theta),
                static_cast<unsigned long long>(rho),
                static_cast<unsigned long long>(pi),
                static_cast<unsigned long long>(chi),
                static_cast<unsigned long long>(iota),
                static_cast<unsigned long long>(total));
  }
  std::printf("(paper, 64-bit L1)  |    26 |   10 |   15 |   50 |    2 |   103\n");
  std::printf("(paper, 64-bit L8)  |    26 |    8 |    7 |   30 |    4 |    75\n");

  kvx::bench::header(
      "Attributed full permutation (24-round loop programs, EleNum=5)\n"
      "theta | rho+pi | chi+iota | other | perm total | per-round  — cycles\n"
      "(via core::attribute_step_cycles — the engine's --stats code path)");

  std::vector<ArchRow> rows;
  for (Arch arch : kArches) {
    const KeccakProgram prog =
        build_keccak_program({arch, 5, 24, /*single_round=*/false});
    sim::ProcessorConfig cfg;
    cfg.vector.elen_bits = arch_elen(arch);
    cfg.vector.ele_num = 5;
    sim::SimdProcessor proc(cfg);
    proc.load_program(prog.image);
    proc.run();

    const obs::StepCycleStats s = attribute_step_cycles(proc.markers());
    rows.push_back({std::string(arch_name(arch)), s});
    const double rounds =
        s.rounds != 0 ? static_cast<double>(s.rounds) : 1.0;
    std::printf(
        "%-18s | %6llu | %6llu | %8llu | %5llu | %10llu | %9.1f\n",
        std::string(arch_name(arch)).c_str(),
        static_cast<unsigned long long>(s.theta),
        static_cast<unsigned long long>(s.rho_pi),
        static_cast<unsigned long long>(s.chi_iota),
        static_cast<unsigned long long>(s.other),
        static_cast<unsigned long long>(s.total),
        static_cast<double>(s.total) / rounds);
  }
  std::printf("(paper per round)   64-bit L1: theta 26 + rho/pi 25 + "
              "chi/iota 52 = 103; L8: 26 + 15 + 34 = 75\n");

  std::FILE* f = std::fopen("BENCH_steps.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"step_breakdown\",\n");
    std::fprintf(f, "  \"rounds\": 24,\n  \"ele_num\": 5,\n");
    std::fprintf(f, "  \"arch\": [\n");
    for (usize i = 0; i < rows.size(); ++i) {
      const ArchRow& r = rows[i];
      std::fprintf(
          f,
          "    {\"name\": \"%s\", \"theta\": %llu, \"rho_pi\": %llu, "
          "\"chi_iota\": %llu, \"absorb\": %llu, \"other\": %llu, "
          "\"total\": %llu, \"rounds\": %llu}%s\n",
          r.name.c_str(), static_cast<unsigned long long>(r.steps.theta),
          static_cast<unsigned long long>(r.steps.rho_pi),
          static_cast<unsigned long long>(r.steps.chi_iota),
          static_cast<unsigned long long>(r.steps.absorb),
          static_cast<unsigned long long>(r.steps.other),
          static_cast<unsigned long long>(r.steps.total),
          static_cast<unsigned long long>(r.steps.rounds),
          i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_steps.json\n");
  }
  return 0;
}
