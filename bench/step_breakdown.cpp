// Per-step-mapping cycle breakdown of one Keccak round for every
// architecture variant (the paper's Algorithm 2/3 "# N cc" annotations,
// measured via the free step markers in the single-round programs).
//
// Expected from the paper: 64-bit LMUL=1 round = θ 26 + ρ 10 + π 15 +
// χ 50 + ι 2 = 103 cc; LMUL=8 = θ 26 + ρ 8 + π 7 + χ 30 + ι 4 = 75 cc
// (ρ includes its vsetvli; ι its switch back to LMUL=1).
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/core/program_builder.hpp"
#include "kvx/sim/processor.hpp"

int main() {
  using namespace kvx;
  using namespace kvx::core;

  kvx::bench::header(
      "Cycle breakdown per step mapping (one round, EleNum=5)\n"
      "theta | rho | pi | chi | iota | total  — cycles");

  for (Arch arch : {Arch::k64Lmul1, Arch::k64Lmul8, Arch::k32Lmul8,
                    Arch::k64PureRvv, Arch::k64Fused}) {
    const KeccakProgram prog =
        build_keccak_program({arch, 5, 24, /*single_round=*/true});
    sim::ProcessorConfig cfg;
    cfg.vector.elen_bits = arch_elen(arch);
    cfg.vector.ele_num = 5;
    sim::SimdProcessor proc(cfg);
    proc.load_program(prog.image);
    proc.run();

    const u64 theta = proc.cycles_between(Markers::kRoundStart, Markers::kStepRho);
    const u64 rho = proc.cycles_between(Markers::kStepRho, Markers::kStepPi);
    const u64 pi = proc.cycles_between(Markers::kStepPi, Markers::kStepChi);
    const u64 chi = proc.cycles_between(Markers::kStepChi, Markers::kStepIota);
    const u64 iota = proc.cycles_between(Markers::kStepIota, Markers::kRoundEnd);
    const u64 total = proc.cycles_between(Markers::kRoundStart, Markers::kRoundEnd);
    std::printf("%-18s | %5llu | %4llu | %4llu | %4llu | %4llu | %5llu\n",
                std::string(arch_name(arch)).c_str(),
                static_cast<unsigned long long>(theta),
                static_cast<unsigned long long>(rho),
                static_cast<unsigned long long>(pi),
                static_cast<unsigned long long>(chi),
                static_cast<unsigned long long>(iota),
                static_cast<unsigned long long>(total));
  }
  std::printf("(paper, 64-bit L1)  |    26 |   10 |   15 |   50 |    2 |   103\n");
  std::printf("(paper, 64-bit L8)  |    26 |    8 |    7 |   30 |    4 |    75\n");
  return 0;
}
