// Ablation for the paper's §5 prediction: "Predictably, the two
// architectures' performance will improve more if we increase the
// granularity or combine some adjacent operations."
//
// We implement that direction as a three-instruction fused extension on top
// of the 64-bit architecture — vthetac (θ's slide/rotate/xor combine),
// vrhopi (ρ∘π in one column-mode instruction) and vchi (a whole χ row) —
// and measure what the fusion buys over the paper's Algorithms 2 and 3.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/vector_keccak.hpp"

int main() {
  using namespace kvx;
  using namespace kvx::core;

  kvx::bench::header(
      "Ablation — instruction fusion (paper §5 future work), 64-bit arch");

  std::printf("%-18s | round cc | perm cc | cycles/byte | tput x10^3 (6 states)\n",
              "variant");
  kvx::bench::rule();
  u64 alg3_perm = 0;
  for (Arch arch : {Arch::k64Lmul1, Arch::k64Lmul8, Arch::k64Fused}) {
    VectorKeccak small({arch, 5, 24});
    VectorKeccak large({arch, 30, 24});
    const u64 round = small.measure_round_cycles();
    const u64 perm = large.measure_permutation_cycles();
    if (arch == Arch::k64Lmul8) alg3_perm = perm;
    std::printf("%-18s | %8llu | %7llu | %11.2f | %10.2f\n",
                std::string(arch_name(arch)).c_str(),
                static_cast<unsigned long long>(round),
                static_cast<unsigned long long>(perm), cycles_per_byte(perm),
                throughput_e3(perm, 6));
  }

  kvx::bench::rule();
  VectorKeccak fused({Arch::k64Fused, 30, 24});
  const double gain = static_cast<double>(alg3_perm) /
                      static_cast<double>(fused.measure_permutation_cycles());
  std::printf(
      "Fusion gain over Algorithm 3: %.2fx — confirming the paper's §5\n"
      "prediction. Cost: vrhopi needs the rotate network in the column-mode\n"
      "write path and vchi adds a three-source neighbour network (modelled\n"
      "as +1 cycle; in hardware this is extra register-file read ports).\n"
      "Round breakdown (fused): theta 20, rho+pi 2+7, chi 7, iota 4 = 40 cc.\n",
      gain);
  return 0;
}
