// Quantifies the paper's §4.1 efficiency claim — "All operations work
// without loading or storing intermediate data to/from memory. This is very
// efficient and can save a significant portion of the execution time" — by
// measuring the on-device sponge: per-block absorb overhead (vector block
// load + XOR + loop control) against the permutation itself, per
// architecture, and the effective hashing throughput that results.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/on_device_sponge.hpp"

int main() {
  using namespace kvx;
  using namespace kvx::core;

  kvx::bench::header(
      "On-device sponge absorb (SHAKE128 rate, 8 blocks, SN=1)\n"
      "absorb overhead per block vs. the 24-round permutation");

  std::vector<std::vector<u8>> msgs(1);
  msgs[0] = kvx::bench::random_bytes(8 * 168, /*seed=*/1);

  std::printf("%-18s | perm cc | absorb cc/blk | overhead | eff. cycles/byte\n",
              "architecture");
  kvx::bench::rule();
  for (Arch arch : {Arch::k64Lmul1, Arch::k64Lmul8, Arch::k64Fused}) {
    OnDeviceSponge sponge(arch, 5, 168);
    (void)sponge.absorb(msgs);
    const u64 total = sponge.last_cycles();
    const u64 overhead = sponge.last_absorb_overhead_per_block();
    const double per_block = static_cast<double>(total) / 8.0;
    std::printf("%-18s | %7.0f | %13llu | %7.2f%% | %15.2f\n",
                std::string(arch_name(arch)).c_str(), per_block - overhead,
                static_cast<unsigned long long>(overhead),
                100.0 * static_cast<double>(overhead) / per_block,
                static_cast<double>(total) / (8.0 * 168.0));
  }

  kvx::bench::rule();
  std::printf(
      "The absorb phase costs ~2%% of each block's processing — keeping the\n"
      "states register-resident across the whole message makes the sponge\n"
      "bookkeeping negligible, as the paper asserts.\n");
  return 0;
}
