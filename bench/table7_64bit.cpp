// Reproduces **Table 7** of the paper: the 64-bit architectures (LMUL = 1
// and LMUL = 8) at EleNum ∈ {5, 15, 30}, compared with the Rawat &
// Schaumont vector-ISE design [20].
//
// Every "measured" number comes from running the generated Keccak assembly
// on the cycle-accurate simulator; area comes from the calibrated model;
// the paper's published values are printed alongside for comparison.
#include <cstdio>

#include "bench_util.hpp"
#include "kvx/core/area_model.hpp"
#include "kvx/core/metrics.hpp"
#include "kvx/core/reference_designs.hpp"
#include "kvx/core/vector_keccak.hpp"

namespace {

using namespace kvx;
using namespace kvx::core;

struct PaperRow {
  double cycles_per_round, cycles_per_byte, throughput_e3;
  unsigned area;
};

void run_rows(Arch arch, const char* label, const PaperRow paper[3]) {
  kvx::bench::rule();
  for (int k = 0; k < 3; ++k) {
    const unsigned ele_num = (k == 0) ? 5u : (k == 1) ? 15u : 30u;
    const unsigned sn = ele_num / 5;
    VectorKeccak vk({arch, ele_num, 24});
    const u64 round = vk.measure_round_cycles();
    const u64 perm = vk.measure_permutation_cycles();
    const unsigned area = AreaModel::simd_processor_slices(64, ele_num);
    std::printf(
        "%-11s EleNum=%-2u (%u state%s) | %11llu | %11.1f | %12.2f | %7u\n",
        label, ele_num, sn, sn > 1 ? "s" : " ",
        static_cast<unsigned long long>(round), cycles_per_byte(perm),
        throughput_e3(perm, sn), area);
    std::printf(
        "%-11s   (paper)            | %11.0f | %11.1f | %12.2f | %7u\n",
        "", paper[k].cycles_per_round, paper[k].cycles_per_byte,
        paper[k].throughput_e3, paper[k].area);
  }
}

}  // namespace

int main() {
  kvx::bench::header(
      "Table 7 — 64-bit architectures vs. 64-bit reference\n"
      "columns: cycles/round | cycles/byte | throughput (bits/cycle x10^3) | area (slices)");

  const auto& rawat = rawat_vector_ise();
  std::printf(
      "%-11s %-20s | %11.0f | %11s | %12.2f | %s\n",
      "Reference", rawat.name.data(), *rawat.cycles_per_round, "-",
      rawat.throughput_e3, kvx::bench::opt_str(rawat.area_slices).c_str());

  static constexpr PaperRow kPaperLmul1[3] = {
      {103, 12.8, 624.02, 7323},
      {103, 12.8, 1872.07, 24789},
      {103, 12.8, 3744.15, 48180},
  };
  static constexpr PaperRow kPaperLmul8[3] = {
      {75, 9.5, 845.67, 7323},
      {75, 9.5, 2537.00, 24789},
      {75, 9.5, 5073.00, 48180},
  };
  run_rows(Arch::k64Lmul1, "64b LMUL=1", kPaperLmul1);
  run_rows(Arch::k64Lmul8, "64b LMUL=8", kPaperLmul8);

  kvx::bench::rule();
  VectorKeccak best({Arch::k64Lmul8, 30, 24});
  const double ours = throughput_e3(best.measure_permutation_cycles(), 6);
  std::printf(
      "Headline (paper §4.2): 64-bit LMUL=8 EleNum=30 vs. vector ISE [20]: "
      "%.2fx (paper: 5.3x)\n",
      ours / rawat.throughput_e3);
  return 0;
}
