// Host-parallel engine throughput: jobs/s and MB/s vs thread count × SN ×
// execution backend.
//
// The paper's two results tables measure *simulated* cycles of one
// accelerator. This bench measures the host-side dimension the ROADMAP's
// throughput goal adds: how fast a pool of worker shards (one simulated
// accelerator each) retires a batch workload, against the single-threaded
// ParallelSha3 baseline at the same SN. Each engine grid point runs once
// per execution backend (interpreter, compiled trace). Every digest is
// verified against the host golden model. Deterministic workload
// (bench_util::random_bytes, fixed seed) so only timings vary between runs.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/keccak/sha3.hpp"

namespace {

using namespace kvx;
using Clock = std::chrono::steady_clock;

constexpr usize kJobs = 240;
constexpr usize kBytes = 200;  // 2 SHA3-256 rate blocks per job

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  using keccak::Sha3Function;

  std::vector<engine::HashJob> jobs(kJobs);
  std::vector<std::vector<u8>> messages(kJobs);
  for (usize i = 0; i < kJobs; ++i) {
    messages[i] = bench::random_bytes(kBytes, /*seed=*/2026 + i);
    jobs[i] = {engine::Algo::kSha3_256, messages[i]};
  }
  std::vector<std::vector<u8>> expected(kJobs);
  for (usize i = 0; i < kJobs; ++i) {
    expected[i] = keccak::hash(Sha3Function::kSha3_256, messages[i], 32);
  }
  const double mb = static_cast<double>(kJobs * kBytes) / 1e6;

  bench::header("Engine throughput — jobs/s and MB/s vs host threads x SN x "
                "backend (SHA3-256, 240 x 200 B)");
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-28s | wall ms | jobs/s  |  MB/s  | vs baseline\n", "config");
  bench::rule();

  double sn6t8_mbs[2] = {0, 0};  // [interpreter, trace] at SN=6, 8 threads
  for (const unsigned sn : {1u, 3u, 6u}) {
    const core::VectorKeccakConfig accel{core::Arch::k64Lmul8, 5 * sn, 24};

    // Baseline: plain single-threaded ParallelSha3 over the whole batch.
    core::ParallelSha3 baseline(accel);
    auto t0 = Clock::now();
    const auto base_outs =
        baseline.hash_batch(Sha3Function::kSha3_256, messages);
    const double base_s = seconds_since(t0);
    for (usize i = 0; i < kJobs; ++i) {
      if (base_outs[i] != expected[i]) {
        std::printf("BASELINE DIGEST MISMATCH at job %zu\n", i);
        return 1;
      }
    }
    std::printf("SN=%u  ParallelSha3 baseline  | %7.1f | %7.0f | %6.2f | %9s\n",
                sn, base_s * 1e3, kJobs / base_s, mb / base_s, "1.00x");

    for (const sim::ExecBackend backend :
         {sim::ExecBackend::kInterpreter, sim::ExecBackend::kCompiledTrace}) {
      for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        engine::EngineConfig cfg;
        cfg.threads = threads;
        cfg.accel = accel;
        cfg.accel.backend = backend;
        engine::BatchHashEngine eng(cfg);  // construction (incl. any trace
                                           // compile) excluded from timing
        t0 = Clock::now();
        (void)eng.submit_batch(jobs);  // one-lock bulk intake (hot path)
        const auto outs = eng.drain();
        const double s = seconds_since(t0);
        const u64 wall_ns = static_cast<u64>(s * 1e9);
        for (usize i = 0; i < kJobs; ++i) {
          if (outs[i] != expected[i]) {
            std::printf("ENGINE DIGEST MISMATCH at job %zu\n", i);
            return 1;
          }
        }
        // Derived rates come from the shared EngineStats::throughput over
        // the bench's own submit-to-drain window, not local arithmetic.
        const engine::ThroughputStats tp = eng.stats().throughput(wall_ns);
        const bool is_trace = backend == sim::ExecBackend::kCompiledTrace;
        if (sn == 6 && threads == 8) sn6t8_mbs[is_trace ? 1 : 0] = tp.mb_per_sec;
        std::printf("SN=%u  %-11s %u thread%s | %7.1f | %7.0f | %6.2f | %8.2fx\n",
                    sn, std::string(sim::backend_name(backend)).c_str(),
                    threads, threads == 1 ? " " : "s", s * 1e3, tp.jobs_per_sec,
                    tp.mb_per_sec, base_s / s);
      }
    }
    bench::rule();
  }
  std::printf("compiled trace vs interpreter at SN=6, 8 threads: %.2fx host "
              "MB/s\n",
              sn6t8_mbs[0] > 0 ? sn6t8_mbs[1] / sn6t8_mbs[0] : 0.0);
  std::printf("(speedup scales with physical cores; digests verified against "
              "the host golden model)\n");
  return 0;
}
