# Keccak-f[1600], 64-bit architecture, fused-instruction extension (paper SS5 future work)
# EleNum=5, SN=1, rounds=24
.text
    # prologue: s1=EleNum, s2=-1 (NOT via XOR), s3=round, s4=rounds
    li s1, 5
    li s2, -1
    li s3, 0
    li s4, 24
    li s5, 25
    vsetvli x0,s1,e64,m1,tu,mu
    # load the five planes from data memory
    la a0, state
    mv a1, a0
    vle64.v v0,(a1)
    addi a1,a1,40
    vle64.v v1,(a1)
    addi a1,a1,40
    vle64.v v2,(a1)
    addi a1,a1,40
    vle64.v v3,(a1)
    addi a1,a1,40
    vle64.v v4,(a1)

    csrwi 0x7C0, 1
permutation:
    # theta step (fused parity-combine)
    vxor.vv v5,v3,v4
    vxor.vv v6,v1,v2
    vxor.vv v7,v0,v6
    vxor.vv v5,v5,v7
    vthetac.vv v6,v5
    vxor.vv v0,v0,v6
    vxor.vv v1,v1,v6
    vxor.vv v2,v2,v6
    vxor.vv v3,v3,v6
    vxor.vv v4,v4,v6
    # fused rho+pi step (LMUL=8)
    vsetvli x0,s5,e64,m8,tu,mu
    vrhopi.vi v8,v0,-1
    # fused chi step (LMUL=8)
    vchi.vv v0,v8
    # iota step
    vsetvli x0,s1,e64,m1,tu,mu
    viota.vx v0,v0,s3
    # next round
    addi s3,s3,1
    blt s3,s4,permutation
    csrwi 0x7C0, 2

    # store the five planes back
    mv a1, a0
    vse64.v v0,(a1)
    addi a1,a1,40
    vse64.v v1,(a1)
    addi a1,a1,40
    vse64.v v2,(a1)
    addi a1,a1,40
    vse64.v v3,(a1)
    addi a1,a1,40
    vse64.v v4,(a1)
    ebreak

.data
state:
    .zero 200
