# Keccak-f[1600], 64-bit, standard RVV 1.0 instructions ONLY
# (ablation: what the programmer must do without the custom ISE)
# EleNum=5, SN=1, rounds=24
.text
    li s1, 5
    li s2, -1
    li s3, 0
    li s4, 24
    li s8, 63
    vsetvli x0,s1,e64,m1,tu,mu
    # constant vectors: gather indices and rho shift amounts
    la a1, tables
    vle64.v v15,(a1)
    addi a1,a1,40
    vle64.v v16,(a1)
    addi a1,a1,40
    vle64.v v17,(a1)
    addi a1,a1,40
    vle64.v v18,(a1)
    addi a1,a1,40
    vle64.v v19,(a1)
    addi a1,a1,40
    vle64.v v20,(a1)
    addi a1,a1,40
    vle64.v v21,(a1)
    addi a1,a1,40
    vle64.v v22,(a1)
    addi a1,a1,40
    vle64.v v23,(a1)
    addi a1,a1,40
    vle64.v v24,(a1)
    addi a1,a1,40
    vle64.v v25,(a1)
    addi a1,a1,40
    vle64.v v26,(a1)
    addi a1,a1,40
    vle64.v v27,(a1)
    la s9, idx_pi
    la s10, scratch
    la t5, rc_rows
    # load the five planes
    la a0, state
    mv a1, a0
    vle64.v v0,(a1)
    addi a1,a1,40
    vle64.v v1,(a1)
    addi a1,a1,40
    vle64.v v2,(a1)
    addi a1,a1,40
    vle64.v v3,(a1)
    addi a1,a1,40
    vle64.v v4,(a1)

    csrwi 0x7C0, 1
permutation:
    # theta (vrgather slides + shift/or rotate)
    vxor.vv v5,v3,v4
    vxor.vv v6,v1,v2
    vxor.vv v7,v0,v6
    vxor.vv v5,v5,v7
    vrgather.vv v6,v5,v16
    vrgather.vv v7,v5,v15
    vsll.vi v8,v7,1
    vsrl.vx v9,v7,s8
    vor.vv v7,v8,v9
    vxor.vv v5,v6,v7
    vxor.vv v0,v0,v5
    vxor.vv v1,v1,v5
    vxor.vv v2,v2,v5
    vxor.vv v3,v3,v5
    vxor.vv v4,v4,v5
    # rho (per-element shift vectors, three ops per plane)
    vsll.vv v10,v0,v18
    vsrl.vv v11,v0,v23
    vor.vv v5,v10,v11
    vsll.vv v10,v1,v19
    vsrl.vv v11,v1,v24
    vor.vv v6,v10,v11
    vsll.vv v10,v2,v20
    vsrl.vv v11,v2,v25
    vor.vv v7,v10,v11
    vsll.vv v10,v3,v21
    vsrl.vv v11,v3,v26
    vor.vv v8,v10,v11
    vsll.vv v10,v4,v22
    vsrl.vv v11,v4,v27
    vor.vv v9,v10,v11
    # pi (indexed-store scatter through memory, then reload)
    mv t2, s9
    vle32.v v28,(t2)
    addi t2,t2,20
    vsuxei32.v v5,(s10),v28
    vle32.v v28,(t2)
    addi t2,t2,20
    vsuxei32.v v6,(s10),v28
    vle32.v v28,(t2)
    addi t2,t2,20
    vsuxei32.v v7,(s10),v28
    vle32.v v28,(t2)
    addi t2,t2,20
    vsuxei32.v v8,(s10),v28
    vle32.v v28,(t2)
    addi t2,t2,20
    vsuxei32.v v9,(s10),v28
    mv t3, s10
    vle64.v v5,(t3)
    addi t3,t3,40
    vle64.v v6,(t3)
    addi t3,t3,40
    vle64.v v7,(t3)
    addi t3,t3,40
    vle64.v v8,(t3)
    addi t3,t3,40
    vle64.v v9,(t3)
    # chi (vrgather slides)
    vrgather.vv v10,v5,v15
    vxor.vx v10,v10,s2
    vrgather.vv v11,v5,v17
    vand.vv v10,v10,v11
    vxor.vv v0,v5,v10
    vrgather.vv v10,v6,v15
    vxor.vx v10,v10,s2
    vrgather.vv v11,v6,v17
    vand.vv v10,v10,v11
    vxor.vv v1,v6,v10
    vrgather.vv v10,v7,v15
    vxor.vx v10,v10,s2
    vrgather.vv v11,v7,v17
    vand.vv v10,v10,v11
    vxor.vv v2,v7,v10
    vrgather.vv v10,v8,v15
    vxor.vx v10,v10,s2
    vrgather.vv v11,v8,v17
    vand.vv v10,v10,v11
    vxor.vv v3,v8,v10
    vrgather.vv v10,v9,v15
    vxor.vx v10,v10,s2
    vrgather.vv v11,v9,v17
    vand.vv v10,v10,v11
    vxor.vv v4,v9,v10
    # iota (staged RC row from memory)
    vle64.v v28,(t5)
    addi t5,t5,40
    vxor.vv v0,v0,v28
    # next round
    addi s3,s3,1
    blt s3,s4,permutation
    csrwi 0x7C0, 2

    mv a1, a0
    vse64.v v0,(a1)
    addi a1,a1,40
    vse64.v v1,(a1)
    addi a1,a1,40
    vse64.v v2,(a1)
    addi a1,a1,40
    vse64.v v3,(a1)
    addi a1,a1,40
    vse64.v v4,(a1)
    ebreak

.data
state:
    .zero 200
scratch:
    .zero 240
tables:
    .dword 1
    .dword 2
    .dword 3
    .dword 4
    .dword 0
    .dword 4
    .dword 0
    .dword 1
    .dword 2
    .dword 3
    .dword 2
    .dword 3
    .dword 4
    .dword 0
    .dword 1
    .dword 0
    .dword 1
    .dword 62
    .dword 28
    .dword 27
    .dword 36
    .dword 44
    .dword 6
    .dword 55
    .dword 20
    .dword 3
    .dword 10
    .dword 43
    .dword 25
    .dword 39
    .dword 41
    .dword 45
    .dword 15
    .dword 21
    .dword 8
    .dword 18
    .dword 2
    .dword 61
    .dword 56
    .dword 14
    .dword 0
    .dword 63
    .dword 2
    .dword 36
    .dword 37
    .dword 28
    .dword 20
    .dword 58
    .dword 9
    .dword 44
    .dword 61
    .dword 54
    .dword 21
    .dword 39
    .dword 25
    .dword 23
    .dword 19
    .dword 49
    .dword 43
    .dword 56
    .dword 46
    .dword 62
    .dword 3
    .dword 8
    .dword 50
idx_pi:
    .word 0
    .word 80
    .word 160
    .word 40
    .word 120
    .word 128
    .word 8
    .word 88
    .word 168
    .word 48
    .word 56
    .word 136
    .word 16
    .word 96
    .word 176
    .word 184
    .word 64
    .word 144
    .word 24
    .word 104
    .word 112
    .word 192
    .word 72
    .word 152
    .word 32
    .align 3
rc_rows:
    .dword 0x1
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8082
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x800000000000808a
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000080008000
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x808b
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x80000001
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000080008081
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000000008009
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8a
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x88
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x80008009
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000a
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000808b
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x800000000000008b
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000000008089
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000000008003
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000000008002
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000000000080
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x800a
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x800000008000000a
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000080008081
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000000008080
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x80000001
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x8000000080008008
    .dword 0x0
    .dword 0x0
    .dword 0x0
    .dword 0x0
