# Keccak-f[1600], 32-bit architecture, LMUL=8 (paper §3.2/§4.1)
# EleNum=5, SN=1, rounds=24
.text
    li s1, 5
    li s5, 25
    li s2, -1
    li s3, 0
    li s4, 24
    li s6, 0
    li s7, 1
    vsetvli x0,s1,e32,m1,tu,mu
    # index vectors for the hi/lo lane exchange (indexed addressing)
    la a1, idx_lo
    vle32.v v30,(a1)
    la a1, idx_hi
    vle32.v v31,(a1)
    # indexed loads: lo words -> v0..v4, hi words -> v16..v20
    la a0, state
    mv a1, a0
    vluxei32.v v0,(a1),v30
    vluxei32.v v16,(a1),v31
    addi a1,a1,40
    vluxei32.v v1,(a1),v30
    vluxei32.v v17,(a1),v31
    addi a1,a1,40
    vluxei32.v v2,(a1),v30
    vluxei32.v v18,(a1),v31
    addi a1,a1,40
    vluxei32.v v3,(a1),v30
    vluxei32.v v19,(a1),v31
    addi a1,a1,40
    vluxei32.v v4,(a1),v30
    vluxei32.v v20,(a1),v31

    csrwi 0x7C0, 1
permutation:
    # theta step (LMUL=1, both halves)
    vxor.vv v5,v3,v4
    vxor.vv v6,v1,v2
    vxor.vv v7,v0,v6
    vxor.vv v5,v5,v7
    vxor.vv v21,v19,v20
    vxor.vv v22,v17,v18
    vxor.vv v23,v16,v22
    vxor.vv v21,v21,v23
    vslideupm.vi v6,v5,1
    vslideupm.vi v22,v21,1
    vslidedownm.vi v7,v5,1
    vslidedownm.vi v23,v21,1
    v32lrotup.vv v8,v23,v7
    v32hrotup.vv v24,v23,v7
    vxor.vv v5,v6,v8
    vxor.vv v21,v22,v24
    vxor.vv v0,v0,v5
    vxor.vv v1,v1,v5
    vxor.vv v2,v2,v5
    vxor.vv v3,v3,v5
    vxor.vv v4,v4,v5
    vxor.vv v16,v16,v21
    vxor.vv v17,v17,v21
    vxor.vv v18,v18,v21
    vxor.vv v19,v19,v21
    vxor.vv v20,v20,v21
    # rho step (LMUL=8, paired hi/lo rotation)
    vsetvli x0,s5,e32,m8,tu,mu
    v32lrho.vv v8,v16,v0
    v32hrho.vv v24,v16,v0
    # pi step (LMUL=8, both halves)
    vpi.vi v0,v8,-1
    vpi.vi v16,v24,-1
    # chi step (LMUL=8), low then high halves
    vslidedownm.vi v8,v0,1
    vxor.vx v8,v8,s2
    vslidedownm.vi v24,v0,2
    vand.vv v8,v8,v24
    vxor.vv v0,v0,v8
    vslidedownm.vi v8,v16,1
    vxor.vx v8,v8,s2
    vslidedownm.vi v24,v16,2
    vand.vv v8,v8,v24
    vxor.vv v16,v16,v8
    # iota step (split RC table; runs twice per round)
    vsetvli x0,s1,e32,m1,tu,mu
    viota.vx v0,v0,s6
    viota.vx v16,v16,s7
    # next round
    addi s6,s6,2
    addi s7,s7,2
    addi s3,s3,1
    blt s3,s4,permutation
    csrwi 0x7C0, 2

    # indexed stores back to the 64-bit lane layout
    mv a1, a0
    vsuxei32.v v0,(a1),v30
    vsuxei32.v v16,(a1),v31
    addi a1,a1,40
    vsuxei32.v v1,(a1),v30
    vsuxei32.v v17,(a1),v31
    addi a1,a1,40
    vsuxei32.v v2,(a1),v30
    vsuxei32.v v18,(a1),v31
    addi a1,a1,40
    vsuxei32.v v3,(a1),v30
    vsuxei32.v v19,(a1),v31
    addi a1,a1,40
    vsuxei32.v v4,(a1),v30
    vsuxei32.v v20,(a1),v31
    ebreak

.data
state:
    .zero 200
idx_lo:
    .word 0
    .word 8
    .word 16
    .word 24
    .word 32
idx_hi:
    .word 4
    .word 12
    .word 20
    .word 28
    .word 36
