# Keccak-f[1600], 64-bit architecture, LMUL=1 (Algorithm 2)
# EleNum=5, SN=1, rounds=24
.text
    # prologue: s1=EleNum, s2=-1 (NOT via XOR), s3=round, s4=rounds
    li s1, 5
    li s2, -1
    li s3, 0
    li s4, 24
    vsetvli x0,s1,e64,m1,tu,mu
    # load the five planes from data memory
    la a0, state
    mv a1, a0
    vle64.v v0,(a1)
    addi a1,a1,40
    vle64.v v1,(a1)
    addi a1,a1,40
    vle64.v v2,(a1)
    addi a1,a1,40
    vle64.v v3,(a1)
    addi a1,a1,40
    vle64.v v4,(a1)

    csrwi 0x7C0, 1
permutation:
    # theta step
    vxor.vv v5,v3,v4
    vxor.vv v6,v1,v2
    vxor.vv v7,v0,v6
    vxor.vv v5,v5,v7
    vslideupm.vi v6,v5,1
    vslidedownm.vi v7,v5,1
    vrotup.vi v7,v7,1
    vxor.vv v5,v6,v7
    vxor.vv v0,v0,v5
    vxor.vv v1,v1,v5
    vxor.vv v2,v2,v5
    vxor.vv v3,v3,v5
    vxor.vv v4,v4,v5
    # rho step
    v64rho.vi v0,v0,0
    v64rho.vi v1,v1,1
    v64rho.vi v2,v2,2
    v64rho.vi v3,v3,3
    v64rho.vi v4,v4,4
    # pi step
    vpi.vi v5,v0,0
    vpi.vi v5,v1,1
    vpi.vi v5,v2,2
    vpi.vi v5,v3,3
    vpi.vi v5,v4,4
    # chi step
    vslidedownm.vi v10,v5,1
    vslidedownm.vi v11,v6,1
    vslidedownm.vi v12,v7,1
    vslidedownm.vi v13,v8,1
    vslidedownm.vi v14,v9,1
    vxor.vx v10,v10,s2
    vxor.vx v11,v11,s2
    vxor.vx v12,v12,s2
    vxor.vx v13,v13,s2
    vxor.vx v14,v14,s2
    vslidedownm.vi v15,v5,2
    vslidedownm.vi v16,v6,2
    vslidedownm.vi v17,v7,2
    vslidedownm.vi v18,v8,2
    vslidedownm.vi v19,v9,2
    vand.vv v10,v10,v15
    vand.vv v11,v11,v16
    vand.vv v12,v12,v17
    vand.vv v13,v13,v18
    vand.vv v14,v14,v19
    vxor.vv v0,v5,v10
    vxor.vv v1,v6,v11
    vxor.vv v2,v7,v12
    vxor.vv v3,v8,v13
    vxor.vv v4,v9,v14
    # iota step
    viota.vx v0,v0,s3
    # next round
    addi s3,s3,1
    blt s3,s4,permutation
    csrwi 0x7C0, 2

    # store the five planes back
    mv a1, a0
    vse64.v v0,(a1)
    addi a1,a1,40
    vse64.v v1,(a1)
    addi a1,a1,40
    vse64.v v2,(a1)
    addi a1,a1,40
    vse64.v v3,(a1)
    addi a1,a1,40
    vse64.v v4,(a1)
    ebreak

.data
state:
    .zero 200
