# Keccak-f[1600], 64-bit architecture, LMUL=4+1 (the alternative SS4.1 rejects)
# EleNum=5, SN=1, rounds=24
.text
    # prologue: s1=EleNum, s2=-1 (NOT via XOR), s3=round, s4=rounds
    li s1, 5
    li s2, -1
    li s3, 0
    li s4, 24
    li s6, 20
    vsetvli x0,s1,e64,m1,tu,mu
    # load the five planes from data memory
    la a0, state
    mv a1, a0
    vle64.v v0,(a1)
    addi a1,a1,40
    vle64.v v1,(a1)
    addi a1,a1,40
    vle64.v v2,(a1)
    addi a1,a1,40
    vle64.v v3,(a1)
    addi a1,a1,40
    vle64.v v4,(a1)

    csrwi 0x7C0, 1
permutation:
    # theta step
    vxor.vv v5,v3,v4
    vxor.vv v6,v1,v2
    vxor.vv v7,v0,v6
    vxor.vv v5,v5,v7
    vslideupm.vi v6,v5,1
    vslidedownm.vi v7,v5,1
    vrotup.vi v7,v7,1
    vxor.vv v5,v6,v7
    vxor.vv v0,v0,v5
    vxor.vv v1,v1,v5
    vxor.vv v2,v2,v5
    vxor.vv v3,v3,v5
    vxor.vv v4,v4,v5
    # rho step (LMUL=4 group, then the fifth plane at LMUL=1)
    vsetvli x0,s6,e64,m4,tu,mu
    v64rho.vi v0,v0,-1
    vsetvli x0,s1,e64,m1,tu,mu
    v64rho.vi v4,v4,4
    # pi step (4 + 1)
    vsetvli x0,s6,e64,m4,tu,mu
    vpi.vi v8,v0,-1
    vsetvli x0,s1,e64,m1,tu,mu
    vpi.vi v8,v4,4
    # chi step (4 + 1)
    vsetvli x0,s6,e64,m4,tu,mu
    vslidedownm.vi v16,v8,1
    vxor.vx v16,v16,s2
    vslidedownm.vi v24,v8,2
    vand.vv v16,v16,v24
    vxor.vv v0,v8,v16
    vsetvli x0,s1,e64,m1,tu,mu
    vslidedownm.vi v20,v12,1
    vxor.vx v20,v20,s2
    vslidedownm.vi v28,v12,2
    vand.vv v20,v20,v28
    vxor.vv v4,v12,v20
    # iota step
    viota.vx v0,v0,s3
    # next round
    addi s3,s3,1
    blt s3,s4,permutation
    csrwi 0x7C0, 2

    # store the five planes back
    mv a1, a0
    vse64.v v0,(a1)
    addi a1,a1,40
    vse64.v v1,(a1)
    addi a1,a1,40
    vse64.v v2,(a1)
    addi a1,a1,40
    vse64.v v3,(a1)
    addi a1,a1,40
    vse64.v v4,(a1)
    ebreak

.data
state:
    .zero 200
