// kvx-run — execute a KVXIMG1 image (or assemble a .s on the fly) on the
// simulated SIMD processor and report cycles, markers and final registers.
//
//   kvx-run program.img|program.s [--elen 32|64] [--elenum N] [--trace]
//           [--max-cycles N]
//           [--backend interpreter|trace|fused|host-simd|jit]
//
// With --backend trace the program is compiled into a pre-decoded kernel
// trace and replayed; the reported cycles, markers and final registers come
// from the recording run and are bit-identical to the interpreter's.
// --backend fused additionally pattern-matches the trace into Keccak-step
// super-kernels (see trace_fusion.hpp) — same architectural results and
// cycles, less host work. --backend host-simd lowers runs of the matched
// 64-bit super-kernels to the host's own vector ISA (see host_simd.hpp),
// picked by CPUID; the reported backend line names the ISA that actually
// dispatched. --backend jit goes one tier further and emits the whole
// host-SIMD plan as one native x86-64 function (see jit/jit_trace.hpp).
// Each tier demotes to the next on a compile/lowering/emission rejection.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "kvx/asm/assembler.hpp"
#include "kvx/asm/image_io.hpp"
#include "kvx/common/cli.hpp"
#include "kvx/common/error.hpp"
#include "kvx/core/step_attribution.hpp"
#include "kvx/isa/disasm.hpp"
#include "kvx/sim/compiled_trace.hpp"
#include "kvx/sim/host_simd.hpp"
#include "kvx/sim/jit/jit_trace.hpp"
#include "kvx/sim/processor.hpp"
#include "kvx/sim/trace_fusion.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s program.img|program.s [--elen 32|64] [--elenum N]\n"
               "       [--trace] [--profile] [--max-cycles N]\n"
               "       [--backend BACKEND]   (one of: %s)\n",
               prog, std::string(kvx::sim::kBackendNamesHelp).c_str());
  return 2;
}

bool ends_with(const std::string& s, const char* suffix) {
  const kvx::usize n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  kvx::sim::ProcessorConfig cfg;
  cfg.vector.elen_bits = 64;
  cfg.vector.ele_num = 5;
  bool trace = false;
  bool profile = false;
  kvx::sim::ExecBackend backend = kvx::sim::ExecBackend::kInterpreter;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--elen" && i + 1 < argc) {
      cfg.vector.elen_bits =
          kvx::cli::require_unsigned("kvx-run", "--elen", argv[++i], 32, 64);
      if (cfg.vector.elen_bits != 32 && cfg.vector.elen_bits != 64) {
        std::fprintf(stderr, "kvx-run: --elen must be 32 or 64\n");
        return 2;
      }
    } else if (a == "--elenum" && i + 1 < argc) {
      cfg.vector.ele_num =
          kvx::cli::require_unsigned("kvx-run", "--elenum", argv[++i], 1, 64);
    } else if (a == "--max-cycles" && i + 1 < argc) {
      cfg.max_cycles =
          kvx::cli::require_u64("kvx-run", "--max-cycles", argv[++i], 1);
    } else if (a == "--trace") {
      trace = true;
    } else if (a == "--profile") {
      profile = true;
    } else if (a == "--backend" && i + 1 < argc) {
      const auto parsed = kvx::sim::parse_backend(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr,
                     "kvx-run: unknown backend '%s' (accepted: %s)\n", argv[i],
                     std::string(kvx::sim::kBackendNamesHelp).c_str());
        return 2;
      }
      backend = *parsed;
    } else if (!a.empty() && a[0] != '-' && input.empty()) {
      input = a;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  try {
    kvx::assembler::Program program;
    if (ends_with(input, ".s") || ends_with(input, ".asm")) {
      std::ifstream in(input);
      if (!in) throw kvx::Error("cannot open " + input);
      std::ostringstream src;
      src << in.rdbuf();
      program = kvx::assembler::assemble(src.str());
    } else {
      std::ifstream in(input, std::ios::binary);
      if (!in) throw kvx::Error("cannot open " + input);
      program = kvx::assembler::load_image(in);
    }

    kvx::sim::SimdProcessor proc(cfg);
    proc.load_program(program);

    std::shared_ptr<const kvx::sim::CompiledTrace> compiled;
    std::shared_ptr<const kvx::sim::FusedTrace> fused;
    std::shared_ptr<const kvx::sim::HostSimdTrace> hs;
    std::shared_ptr<const kvx::sim::JitTrace> jit;
    if (backend != kvx::sim::ExecBackend::kInterpreter) {
      if (trace) {
        std::fprintf(stderr,
                     "kvx-run: --trace needs per-instruction execution; "
                     "using the interpreter backend\n");
      } else {
        // The staged-state area (when the program names one) doubles as the
        // verify region of the data-independence check, as in VectorKeccak —
        // clamped to the next data symbol so the randomized fill never
        // clobbers constant tables (e.g. interleave index vectors).
        kvx::sim::TraceCompileOptions opts;
        const auto it = program.symbols.find("state");
        if (it != program.symbols.end()) {
          kvx::usize len = kvx::usize{5} * cfg.vector.ele_num * 8;
          for (const auto& [name, addr] : program.symbols) {
            if (addr > it->second) {
              len = std::min<kvx::usize>(len, addr - it->second);
            }
          }
          opts.verify_base = it->second;
          opts.verify_len = len;
        }
        try {
          compiled = kvx::sim::compile_trace(program, cfg, opts);
          if (backend >= kvx::sim::ExecBackend::kFusedTrace) {
            fused = kvx::sim::fuse_trace(compiled);
          }
          if (backend >= kvx::sim::ExecBackend::kHostSimd) {
            try {
              hs = kvx::sim::lower_host_simd(fused);
            } catch (const kvx::SimError& e) {
              std::fprintf(stderr,
                           "kvx-run: host-simd lowering rejected (%s); "
                           "using the fused backend\n",
                           e.what());
            }
          }
          if (backend == kvx::sim::ExecBackend::kJit && hs != nullptr) {
            try {
              jit = kvx::sim::lower_jit(hs);
            } catch (const kvx::SimError& e) {
              std::fprintf(stderr,
                           "kvx-run: jit emission rejected (%s); "
                           "using the host-simd backend\n",
                           e.what());
            }
          }
          if (jit != nullptr) {
            jit->execute(proc.vector(), proc.dmem(),
                         proc.config().cycle_model);
          } else if (hs != nullptr) {
            hs->execute(proc.vector(), proc.dmem(), proc.config().cycle_model);
          } else if (fused != nullptr) {
            fused->execute(proc.vector(), proc.dmem(),
                           proc.config().cycle_model);
          } else {
            compiled->execute(proc.vector(), proc.dmem(),
                              proc.config().cycle_model);
          }
        } catch (const kvx::SimError& e) {
          std::fprintf(stderr,
                       "kvx-run: trace compilation rejected (%s); "
                       "using the interpreter backend\n",
                       e.what());
          compiled = nullptr;
          fused = nullptr;
          hs = nullptr;
          jit = nullptr;
        }
      }
    }
    if (compiled == nullptr) {
      if (trace) {
        proc.set_trace([](kvx::u32 pc, const kvx::isa::Instruction& inst) {
          std::printf("[%08x] %s\n", pc, kvx::isa::disassemble(inst).c_str());
        });
      }
      proc.run();
    }

    const kvx::sim::RunStats& st =
        compiled != nullptr ? compiled->run_stats() : proc.stats();
    const auto& markers =
        compiled != nullptr ? compiled->markers() : proc.markers();
    if (jit != nullptr) {
      std::printf(
          "backend: jit (isa %s, %zu code bytes, %zu round constants, "
          "%.1f%% of records lowered; fused coverage %.1f%%)\n",
          std::string(kvx::sim::host_simd_isa_name(jit->isa())).c_str(),
          jit->code_size(), jit->literal_count(),
          100.0 * jit->lowered_coverage(), 100.0 * fused->coverage());
    } else if (hs != nullptr) {
      std::printf(
          "backend: host-simd (isa %s, %zu lowered kernels in %zu segments, "
          "%.1f%% of records; fused coverage %.1f%%)\n",
          std::string(kvx::sim::host_simd_isa_name(
                          kvx::sim::host_simd_dispatch_isa(hs->sn())))
              .c_str(),
          hs->lowered_kernel_count(), hs->segment_count(),
          100.0 * hs->lowered_coverage(), 100.0 * fused->coverage());
    } else if (fused != nullptr) {
      std::printf(
          "backend: fused (%zu super-kernels covering %zu of %zu records, "
          "%.1f%%, host SIMD %s)\n",
          fused->super_kernel_count(), fused->fused_record_count(),
          compiled->op_count(), 100.0 * fused->coverage(),
          kvx::sim::fusion_host_simd() ? "on" : "off");
    } else if (compiled != nullptr) {
      std::printf("backend: trace (%zu kernels, %zu generic)\n",
                  compiled->op_count(), compiled->generic_op_count());
    }
    std::printf("halted after %llu cycles, %llu instructions "
                "(%llu scalar, %llu vector)\n",
                static_cast<unsigned long long>(st.cycles),
                static_cast<unsigned long long>(st.instructions),
                static_cast<unsigned long long>(st.scalar_instructions),
                static_cast<unsigned long long>(st.vector_instructions));
    if (!markers.empty()) {
      // Loop-mode Keccak programs emit step markers in every round body
      // (~150 markers); summarize per id instead of one line each.
      if (markers.size() <= 16) {
        std::printf("markers:\n");
        for (const auto& m : markers) {
          std::printf("  id %-3u @ cycle %llu\n", m.id,
                      static_cast<unsigned long long>(m.cycle));
        }
      } else {
        std::map<kvx::u32, std::pair<kvx::usize, kvx::u64>> by_id;
        for (const auto& m : markers) {
          auto& [count, last] = by_id[m.id];
          ++count;
          last = m.cycle;
        }
        std::printf("markers (%zu total):\n", markers.size());
        for (const auto& [id, cl] : by_id) {
          std::printf("  id %-3u x%-4zu last @ cycle %llu\n", id, cl.first,
                      static_cast<unsigned long long>(cl.second));
        }
      }
      const kvx::obs::StepCycleStats steps =
          kvx::core::attribute_step_cycles(markers);
      if (steps.rounds != 0) {
        const auto pct = [&](kvx::u64 c) {
          return steps.total != 0
                     ? 100.0 * static_cast<double>(c) /
                           static_cast<double>(steps.total)
                     : 0.0;
        };
        std::printf("step cycles (%llu rounds):\n",
                    static_cast<unsigned long long>(steps.rounds));
        std::printf("  theta    %10llu  %5.1f%%\n",
                    static_cast<unsigned long long>(steps.theta),
                    pct(steps.theta));
        std::printf("  rho+pi   %10llu  %5.1f%%\n",
                    static_cast<unsigned long long>(steps.rho_pi),
                    pct(steps.rho_pi));
        std::printf("  chi+iota %10llu  %5.1f%%\n",
                    static_cast<unsigned long long>(steps.chi_iota),
                    pct(steps.chi_iota));
        if (steps.absorb != 0) {
          std::printf("  absorb   %10llu  %5.1f%%\n",
                      static_cast<unsigned long long>(steps.absorb),
                      pct(steps.absorb));
        }
        std::printf("  other    %10llu  %5.1f%%\n",
                    static_cast<unsigned long long>(steps.other),
                    pct(steps.other));
        std::printf("  total    %10llu\n",
                    static_cast<unsigned long long>(steps.total));
      }
    }
    if (profile) {
      std::printf("cycle profile (top 12):\n%s", st.cycle_profile(12).c_str());
    }
    std::printf("nonzero scalar registers:\n");
    for (unsigned r = 1; r < 32; ++r) {
      const kvx::u32 v = compiled != nullptr ? compiled->final_scalar_regs()[r]
                                             : proc.scalar().regs().read(r);
      if (v != 0) {
        std::printf("  %-5s = 0x%08x (%u)\n",
                    std::string(kvx::isa::xreg_name(r)).c_str(), v, v);
      }
    }
    return 0;
  } catch (const kvx::Error& e) {
    std::fprintf(stderr, "kvx-run: %s\n", e.what());
    return 1;
  }
}
