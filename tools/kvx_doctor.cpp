// kvx-doctor — post-mortem dump inspector and invariant checker.
//
//   kvx-doctor [--check] [--last N] DUMP.kvxdump...
//     --check    run the invariant cross-checks and exit 1 if any fails
//                (parse errors always exit 1); without it the tool only
//                prints and exits 0 unless a dump is unreadable
//     --last N   events of merged-timeline tail / failure-window context
//                to print (default 16)
//
// For each dump the doctor prints the header (reason, signal, pid, build
// info), a per-ring accounting table, the tail of the merged causal
// timeline, and a ±N event window around every failure anchor (job_fail,
// backend_demotion, trace_reject, fault_injected). If the latency histogram
// carries exemplars, the window around the worst recorded job is printed
// too.
//
// --check cross-checks what a healthy dump must satisfy:
//   * the merged timeline is strictly increasing with no duplicate
//     sequence numbers (the rings merged consistently);
//   * every ring stores exactly min(written, capacity) events;
//   * engine counters hold submitted >= completed + failed (equality is
//     only guaranteed at quiescence, and a dump may be mid-flight), for
//     both the Prometheus counters and every engine mirror;
//   * trace-cache entries never exceed the artifacts ever compiled;
//   * every injected backend demotion has fault-injector firings to blame
//     (skipped when any ring wrapped or dropped events — the matching
//     firing may legitimately have been overwritten).
//
// Exit codes: 0 ok, 1 parse failure or (with --check) invariant violation,
// 2 usage error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "kvx/common/cli.hpp"
#include "kvx/common/error.hpp"
#include "kvx/obs/flight_recorder.hpp"
#include "kvx/obs/postmortem.hpp"
#include "kvx/sim/exec_backend.hpp"

namespace {

using namespace kvx;
using obs::FlightEvent;
using obs::FlightEventType;

constexpr int kExitOk = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 2;

const char* artifact_tier_name(u16 tier) {
  switch (tier) {
    case 0: return "trace";
    case 1: return "fused";
    case 2: return "host-simd";
    case 3: return "jit";
    default: return "?";
  }
}

const char* backend_tier_name(u16 tier) {
  if (tier > static_cast<u16>(sim::ExecBackend::kJit)) return "?";
  return sim::backend_name(static_cast<sim::ExecBackend>(tier)).data();
}

const char* fault_kind_name(u16 bit) {
  switch (bit) {
    case 1u << 0: return "regfile_bit_flip";
    case 1u << 1: return "memory_bit_flip";
    case 1u << 2: return "sim_fault";
    case 1u << 3: return "compile_fail";
    default: return "?";
  }
}

/// One line per event: seq, ring, name and the decoded per-type payload.
void print_event(const FlightEvent& e, const char* marker) {
  std::printf("  %s%8llu  ring %2u  %-17s", marker,
              static_cast<unsigned long long>(e.seq), e.ring,
              std::string(flight_event_name(e.type())).c_str());
  const auto ull = [](u64 v) { return static_cast<unsigned long long>(v); };
  switch (e.type()) {
    case FlightEventType::kJobSubmit:
      std::printf("first_seq=%llu jobs=%llu", ull(e.a0), ull(e.a1));
      break;
    case FlightEventType::kJobRetire:
      std::printf("first_seq=%llu jobs=%llu failed=%u", ull(e.a0), ull(e.a1),
                  e.code);
      break;
    case FlightEventType::kJobFail:
      std::printf("job_seq=%llu err_hash=%016llx", ull(e.a0), ull(e.a1));
      break;
    case FlightEventType::kDispatch:
      std::printf("jobs=%llu shard=%llu", ull(e.a0), ull(e.a1));
      break;
    case FlightEventType::kBackendDemotion:
      std::printf("%s -> %s%s err_hash=%016llx",
                  backend_tier_name(static_cast<u16>(e.code >> 8)),
                  backend_tier_name(static_cast<u16>(e.code & 0xFF)),
                  e.a0 != 0 ? " [injected]" : "", ull(e.a1));
      break;
    case FlightEventType::kTraceCompile:
      std::printf("tier=%s ns=%llu", artifact_tier_name(e.code), ull(e.a0));
      break;
    case FlightEventType::kTraceReject:
      std::printf("tier=%s err_hash=%016llx", artifact_tier_name(e.code),
                  ull(e.a1));
      break;
    case FlightEventType::kTraceCacheHit:
      break;
    case FlightEventType::kFaultInjected:
      std::printf("kind=%s site=%s draw=%llu", fault_kind_name(e.code),
                  e.a0 == 0 ? "trace_compile" : "execute", ull(e.a1));
      break;
    case FlightEventType::kQueuePark:
      std::printf("%s", e.code == 0 ? "consumer" : "producer");
      break;
    case FlightEventType::kQueueSteal:
      std::printf("victim=%llu jobs=%llu", ull(e.a0), ull(e.a1));
      break;
    default:
      std::printf("code=%u a0=%llu a1=%llu", e.code, ull(e.a0), ull(e.a1));
      break;
  }
  std::printf("\n");
}

bool is_failure_anchor(const FlightEvent& e) {
  switch (e.type()) {
    case FlightEventType::kJobFail:
    case FlightEventType::kBackendDemotion:
    case FlightEventType::kTraceReject:
    case FlightEventType::kFaultInjected:
      return true;
    default:
      return false;
  }
}

/// Print events[lo, hi) with a marker on `anchor`.
void print_window(const std::vector<FlightEvent>& events, usize lo, usize hi,
                  usize anchor) {
  for (usize i = lo; i < hi; ++i) {
    print_event(events[i], i == anchor ? "> " : "  ");
  }
}

const obs::pm::DumpMetric* find_metric(const obs::pm::PostmortemDump& dump,
                                       const char* name) {
  for (const obs::pm::DumpMetric& m : dump.metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

u64 counter_or_zero(const obs::pm::PostmortemDump& dump, const char* name) {
  const obs::pm::DumpMetric* m = find_metric(dump, name);
  return m != nullptr ? m->counter_value : 0;
}

struct Checker {
  int failures = 0;

  void expect(bool ok, const char* what, u64 lhs, u64 rhs) {
    if (ok) {
      std::printf("  ok    %s (%llu vs %llu)\n", what,
                  static_cast<unsigned long long>(lhs),
                  static_cast<unsigned long long>(rhs));
    } else {
      std::printf("  FAIL  %s (%llu vs %llu)\n", what,
                  static_cast<unsigned long long>(lhs),
                  static_cast<unsigned long long>(rhs));
      ++failures;
    }
  }
};

int inspect(const std::string& path, bool check, usize last) {
  obs::pm::PostmortemDump dump;
  try {
    dump = obs::pm::parse_dump(path);
  } catch (const Error& e) {
    std::fprintf(stderr, "kvx-doctor: %s: %s\n", path.c_str(), e.what());
    return kExitFail;
  }

  std::printf("== %s\n", path.c_str());
  std::printf("  format v%u  pid %llu  reason \"%s\"", dump.version,
              static_cast<unsigned long long>(dump.pid),
              dump.reason.c_str());
  if (dump.signal != 0) std::printf("  signal %d", dump.signal);
  std::printf("\n");
  if (!dump.build_info.empty()) {
    std::printf("-- build info\n");
    std::string line;
    for (const char c : dump.build_info) {
      if (c == '\n') {
        if (!line.empty()) std::printf("  %s\n", line.c_str());
        line.clear();
      } else {
        line.push_back(c);
      }
    }
    if (!line.empty()) std::printf("  %s\n", line.c_str());
  }

  std::printf("-- flight recorder: %zu rings, %zu merged events, %llu dropped\n",
              dump.rings.size(), dump.events.size(),
              static_cast<unsigned long long>(dump.events_dropped));
  bool wrapped = dump.events_dropped != 0;
  for (const obs::pm::DumpRing& r : dump.rings) {
    std::printf("  ring %2u: written %llu, stored %llu%s\n", r.index,
                static_cast<unsigned long long>(r.written),
                static_cast<unsigned long long>(r.stored),
                r.written > r.stored ? " (wrapped)" : "");
    if (r.written > r.stored) wrapped = true;
  }

  const std::vector<FlightEvent>& ev = dump.events;
  if (!ev.empty()) {
    const usize tail = std::min(ev.size(), last);
    std::printf("-- timeline tail (last %zu of %zu)\n", tail, ev.size());
    print_window(ev, ev.size() - tail, ev.size(), ev.size());
  }

  // ±last/2 window around each failure anchor, coalescing overlaps so a
  // burst of related events prints as one window.
  const usize half = std::max<usize>(last / 2, 2);
  usize printed_to = 0;
  for (usize i = 0; i < ev.size(); ++i) {
    if (!is_failure_anchor(ev[i])) continue;
    const usize lo = std::max(std::max(i, half) - half, printed_to);
    const usize hi = std::min(ev.size(), i + half + 1);
    if (lo >= hi) continue;  // already shown by the previous window
    std::printf("-- window around %s (seq %llu)\n",
                std::string(flight_event_name(ev[i].type())).c_str(),
                static_cast<unsigned long long>(ev[i].seq));
    print_window(ev, lo, hi, i);
    printed_to = hi;
  }

  // Worst recorded job: the largest latency exemplar that carries a flight
  // sequence points straight at the retire/fail event of the bucket-max job.
  if (const obs::pm::DumpMetric* lat =
          find_metric(dump, "kvx_engine_job_latency_ns")) {
    u64 worst_v = 0;
    u64 worst_seq = 0;
    for (const auto& [v, seq] : lat->exemplars) {
      if (seq != 0 && v >= worst_v) {
        worst_v = v;
        worst_seq = seq;
      }
    }
    if (worst_seq != 0) {
      std::printf("-- worst-latency exemplar: %llu ns at flight seq %llu\n",
                  static_cast<unsigned long long>(worst_v),
                  static_cast<unsigned long long>(worst_seq));
      for (usize i = 0; i < ev.size(); ++i) {
        if (ev[i].seq == worst_seq) {
          print_window(ev, std::max(i, half) - half,
                       std::min(ev.size(), i + half + 1), i);
          break;
        }
      }
    }
  }

  for (usize n = 0; n < dump.engines.size(); ++n) {
    const obs::pm::DumpEngine& eng = dump.engines[n];
    std::printf("-- engine %zu: submitted %llu, completed %llu, failed %llu, "
                "%zu shards\n",
                n, static_cast<unsigned long long>(eng.submitted),
                static_cast<unsigned long long>(eng.completed),
                static_cast<unsigned long long>(eng.failed),
                eng.shards.size());
  }

  if (!check) return kExitOk;

  std::printf("-- checks\n");
  Checker c;
  // Merged timeline: strictly increasing, so no duplicate and no lost
  // ordering across rings.
  bool monotone = true;
  for (usize i = 1; i < ev.size(); ++i) {
    if (ev[i].seq <= ev[i - 1].seq) monotone = false;
  }
  c.expect(monotone, "timeline strictly increasing", ev.size(), ev.size());
  // Ring accounting: stored == min(written, capacity) — no slot leaked.
  for (const obs::pm::DumpRing& r : dump.rings) {
    const u64 expect_stored =
        std::min<u64>(r.written, obs::FlightRecorder::kRingCapacity);
    // A slot mid-write at dump time is legitimately torn and skipped, so
    // allow stored to undershoot by the writer count (1 per ring).
    c.expect(r.stored == expect_stored || r.stored + 1 == expect_stored,
             "ring stored == min(written, capacity)", r.stored, expect_stored);
  }
  // Prometheus counters: submitted >= completed + failed (equality only at
  // quiescence; a dump can be taken mid-flight).
  const u64 submitted =
      counter_or_zero(dump, "kvx_engine_jobs_submitted_total");
  const u64 completed =
      counter_or_zero(dump, "kvx_engine_jobs_completed_total");
  const u64 failed = counter_or_zero(dump, "kvx_engine_job_failures_total");
  c.expect(submitted >= completed + failed,
           "counters submitted >= completed + failed", submitted,
           completed + failed);
  // Engine mirrors hold the same invariant per engine.
  for (const obs::pm::DumpEngine& eng : dump.engines) {
    c.expect(eng.submitted >= eng.completed + eng.failed,
             "engine submitted >= completed + failed", eng.submitted,
             eng.completed + eng.failed);
  }
  // Trace-cache accounting: live entries can never exceed the artifacts
  // ever compiled (compiles + fusions + lowerings + jit compiles).
  if (const obs::pm::DumpMetric* entries =
          find_metric(dump, "kvx_trace_cache_entries")) {
    const u64 built =
        counter_or_zero(dump, "kvx_trace_cache_compiles_total") +
        counter_or_zero(dump, "kvx_trace_cache_fusions_total") +
        counter_or_zero(dump, "kvx_hostsimd_lowerings_total") +
        counter_or_zero(dump, "kvx_jit_compiles_total");
    c.expect(static_cast<u64>(entries->gauge_value) <= built,
             "cache entries <= artifacts compiled",
             static_cast<u64>(entries->gauge_value), built);
  }
  // Every injected demotion must have an injector firing to blame — only
  // checkable when no ring wrapped or dropped (the firing may otherwise
  // have been overwritten).
  if (!wrapped) {
    u64 injected_demotions = 0;
    u64 injector_firings = 0;
    for (const FlightEvent& e : ev) {
      if (e.type() == FlightEventType::kBackendDemotion && e.a0 != 0) {
        ++injected_demotions;
      }
      if (e.type() == FlightEventType::kFaultInjected) ++injector_firings;
    }
    c.expect(injected_demotions <= injector_firings,
             "injected demotions <= injector firings", injected_demotions,
             injector_firings);
  }
  std::printf("-- %s\n", c.failures == 0 ? "all checks passed" : "CHECKS FAILED");
  return c.failures == 0 ? kExitOk : kExitFail;
}

int usage() {
  std::fprintf(stderr,
               "usage: kvx-doctor [--check] [--last N] DUMP.kvxdump...\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  usize last = 16;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--last") {
      if (i + 1 >= argc) return usage();
      last = cli::require_usize("kvx-doctor", "--last", argv[++i], 1,
                                usize{1} << 20);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();
  int rc = kExitOk;
  for (const std::string& path : paths) {
    if (inspect(path, check, last) != kExitOk) rc = kExitFail;
  }
  return rc;
}
