// kvx-batch — batch hashing CLI on the host-parallel engine.
//
//   kvx-batch [options] [file ...]
//     -a, --algo NAME    sha3-224|sha3-256|sha3-384|sha3-512|shake128|
//                        shake256|kmac128|kmac256        (default sha3-256)
//     -t, --threads N    worker shards                   (default 2)
//     -s, --sn N         Keccak states per shard: 1|3|6  (default 3)
//     --arch NAME        64lmul1|64lmul8|32lmul8|64fused (default 64lmul8)
//     --backend NAME     jit|host-simd|fused|trace|interpreter (default fused)
//     -L, --out-len N    output bytes (required for shake/kmac)
//     --key HEX          KMAC key
//     --custom STR       KMAC customization string
//     --random N[:LEN]   hash N deterministic pseudo-random messages of LEN
//                        bytes (default 256) instead of reading files
//     --inject-faults S  deterministic fault injection, e.g.
//                        "seed=7,rate=1e-3" or "at=5,kinds=sim"; see
//                        kvx/sim/fault_injector.hpp for the full spec
//     --pin              pin worker threads to host CPUs (best-effort; a
//                        locality hint, silently ignored where refused)
//     --verify           cross-check every digest against the host model
//     --stats            print per-shard engine statistics, the backend that
//                        actually ran, compile time, fusion coverage, cache
//                        hits, jit emissions + trace-cache occupancy,
//                        throughput, per-step cycle attribution and
//                        p50/p99/p99.9/max job latency
//     --metrics-json F   write the metrics-registry JSON snapshot to F
//                        ("-" = stdout); see docs/observability.md
//     --trace-out F      record Chrome trace_event JSON to F (open in
//                        Perfetto or chrome://tracing)
//
// Files are hashed in submission order; "-" reads stdin. Output format
// matches sha3sum: "<hex digest>  <name>". Jobs fail individually: a failed
// job prints a FAILED line to stderr and the process exits 1, but every
// other job's digest is still printed.
//
// Exit codes: 0 success, 1 runtime failure (I/O, verify mismatch, engine or
// per-job failure), 2 usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "kvx/common/cli.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/hex.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/sim/fault_injector.hpp"
#include "kvx/obs/trace_event.hpp"

namespace {

using namespace kvx;
using namespace kvx::engine;

// Exit-code convention (uniform across all error paths).
constexpr int kExitOk = 0;       ///< every job hashed (and verified)
constexpr int kExitRuntime = 1;  ///< I/O, verify, engine or per-job failure
constexpr int kExitUsage = 2;    ///< malformed command line

bool parse_algo(const std::string& name, Algo& out) {
  if (name == "sha3-224") out = Algo::kSha3_224;
  else if (name == "sha3-256") out = Algo::kSha3_256;
  else if (name == "sha3-384") out = Algo::kSha3_384;
  else if (name == "sha3-512") out = Algo::kSha3_512;
  else if (name == "shake128") out = Algo::kShake128;
  else if (name == "shake256") out = Algo::kShake256;
  else if (name == "kmac128") out = Algo::kKmac128;
  else if (name == "kmac256") out = Algo::kKmac256;
  else return false;
  return true;
}

bool parse_arch(const std::string& name, core::Arch& out) {
  if (name == "64lmul1") out = core::Arch::k64Lmul1;
  else if (name == "64lmul8") out = core::Arch::k64Lmul8;
  else if (name == "32lmul8") out = core::Arch::k32Lmul8;
  else if (name == "64fused") out = core::Arch::k64Fused;
  else return false;
  return true;
}

std::vector<u8> read_all(std::istream& in) {
  std::vector<u8> data;
  char buf[4096];
  while (in.read(buf, sizeof buf) || in.gcount() > 0) {
    data.insert(data.end(), buf, buf + in.gcount());
  }
  return data;
}

int usage() {
  std::fprintf(stderr,
               "usage: kvx-batch [-a algo] [-t threads] [-s sn] [--arch name]\n"
               "                 [--backend name] [-L out-len]\n"
               "                 [--key hex] [--custom str] [--random N[:LEN]]\n"
               "                 [--inject-faults spec] [--pin] [--verify]\n"
               "                 [--stats]\n"
               "                 [--metrics-json file] [--trace-out file]\n"
               "                 [file ...]\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  Algo algo = Algo::kSha3_256;
  EngineConfig cfg;
  cfg.threads = 2;
  unsigned sn = 3;
  core::Arch arch = core::Arch::k64Lmul8;
  // The fused-trace backend is the CLI default: digests and reported cycles
  // are bit-identical to the interpreter, and it auto-falls back.
  sim::ExecBackend backend = sim::ExecBackend::kFusedTrace;
  usize out_len = 0;
  std::vector<u8> key;
  std::vector<u8> customization;
  usize random_count = 0;
  usize random_len = 256;
  std::string fault_spec;
  bool verify = false;
  bool stats = false;
  std::string metrics_json_path;
  std::string trace_out_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if ((a == "-a" || a == "--algo") && has_next) {
      if (!parse_algo(argv[++i], algo)) {
        std::fprintf(stderr, "kvx-batch: unknown algorithm '%s'\n", argv[i]);
        return kExitUsage;
      }
    } else if ((a == "-t" || a == "--threads") && has_next) {
      // Checked parse: "--threads -1" and "--threads 12abc" are usage
      // errors, not a wrapped-unsigned thread count.
      cfg.threads = cli::require_unsigned("kvx-batch", "--threads",
                                          argv[++i], 1, 4096);
    } else if ((a == "-s" || a == "--sn") && has_next) {
      sn = cli::require_unsigned("kvx-batch", "--sn", argv[++i], 1, 6);
    } else if (a == "--arch" && has_next) {
      if (!parse_arch(argv[++i], arch)) {
        std::fprintf(stderr, "kvx-batch: unknown arch '%s'\n", argv[i]);
        return kExitUsage;
      }
    } else if (a == "--backend" && has_next) {
      const auto parsed = sim::parse_backend(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr,
                     "kvx-batch: unknown backend '%s' (accepted: %s)\n",
                     argv[i], std::string(sim::kBackendNamesHelp).c_str());
        return kExitUsage;
      }
      backend = *parsed;
    } else if ((a == "-L" || a == "--out-len") && has_next) {
      out_len = cli::require_usize("kvx-batch", "--out-len", argv[++i], 1,
                                   usize{1} << 20);
    } else if (a == "--key" && has_next) {
      try {
        key = from_hex(argv[++i]);
      } catch (const Error& e) {
        std::fprintf(stderr, "kvx-batch: --key: %s\n", e.what());
        return kExitUsage;
      }
    } else if (a == "--custom" && has_next) {
      const std::string s = argv[++i];
      customization.assign(s.begin(), s.end());
    } else if (a == "--random" && has_next) {
      const std::string spec = argv[++i];
      const auto colon = spec.find(':');
      const std::string_view count_part =
          std::string_view(spec).substr(0, colon);
      random_count = cli::require_usize("kvx-batch", "--random", count_part,
                                        1, usize{1} << 24);
      if (colon != std::string::npos) {
        random_len = cli::require_usize(
            "kvx-batch", "--random LEN",
            std::string_view(spec).substr(colon + 1), 1, usize{1} << 24);
      }
    } else if (a == "--inject-faults" && has_next) {
      fault_spec = argv[++i];
    } else if (a == "--pin") {
      cfg.pin_workers = true;
    } else if (a == "--verify") {
      verify = true;
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--metrics-json" && has_next) {
      metrics_json_path = argv[++i];
    } else if (a == "--trace-out" && has_next) {
      trace_out_path = argv[++i];
    } else if (a == "-h" || a == "--help") {
      return usage();
    } else if (!a.empty() && a[0] == '-' && a != "-") {
      std::fprintf(stderr, "kvx-batch: unknown option '%s'\n", a.c_str());
      return kExitUsage;
    } else {
      files.push_back(a);
    }
  }
  if (sn != 1 && sn != 3 && sn != 6) {
    std::fprintf(stderr, "kvx-batch: --sn must be 1, 3 or 6\n");
    return kExitUsage;
  }

  // Assemble the job list (files, stdin, or a deterministic random load).
  std::vector<HashJob> jobs;
  std::vector<std::string> names;
  if (random_count > 0) {
    SplitMix64 rng(42);
    for (usize n = 0; n < random_count; ++n) {
      HashJob job;
      job.message.resize(random_len);
      for (u8& b : job.message) b = static_cast<u8>(rng.next());
      jobs.push_back(std::move(job));
      names.push_back("random-" + std::to_string(n));
    }
  } else if (files.empty()) {
    jobs.emplace_back();
    jobs.back().message = read_all(std::cin);
    names.emplace_back("-");
  } else {
    for (const std::string& f : files) {
      HashJob job;
      if (f == "-") {
        job.message = read_all(std::cin);
      } else {
        std::ifstream in(f, std::ios::binary);
        if (!in) {
          std::fprintf(stderr, "kvx-batch: cannot open '%s'\n", f.c_str());
          return kExitRuntime;
        }
        job.message = read_all(in);
      }
      jobs.push_back(std::move(job));
      names.push_back(f);
    }
  }
  for (HashJob& job : jobs) {
    job.algo = algo;
    job.out_len = out_len;
    job.key = key;
    job.customization = customization;
  }

  cfg.accel = {arch, 5 * sn, 24};
  cfg.accel.backend = backend;
  if (!fault_spec.empty()) {
    try {
      cfg.accel.fault_injector =
          std::make_shared<sim::FaultInjector>(sim::parse_fault_plan(fault_spec));
    } catch (const Error& e) {
      std::fprintf(stderr, "kvx-batch: --inject-faults: %s\n", e.what());
      return kExitUsage;
    }
  }
  // Tracing must be live before the engine is constructed so that the
  // backend compile/fuse spans of the warm-up compilation are captured.
  if (!trace_out_path.empty()) obs::TraceEventSink::global().enable();
  bool any_failed = false;
  try {
    BatchHashEngine engine(cfg);
    engine.submit_all(jobs);
    const auto results = engine.drain_results();
    for (usize i = 0; i < jobs.size(); ++i) {
      if (!results[i].ok()) {
        std::fprintf(stderr, "kvx-batch: job '%s' FAILED: %s\n",
                     names[i].c_str(), results[i].error.c_str());
        any_failed = true;
        continue;
      }
      if (verify && results[i].digest != host_reference_digest(jobs[i])) {
        std::fprintf(stderr, "kvx-batch: VERIFY FAILED for '%s'\n",
                     names[i].c_str());
        return kExitRuntime;
      }
      std::printf("%s  %s\n", to_hex(results[i].digest).c_str(),
                  names[i].c_str());
    }
    if (stats) {
      const EngineStats st = engine.stats();
      const ShardStats t = st.totals();
      std::fprintf(stderr,
                   "engine: %u shards x SN=%u | jobs %llu | bytes %llu | "
                   "dispatches %llu | sim cycles %llu | queue high-water %zu\n",
                   engine.threads(), engine.lanes_per_shard(),
                   static_cast<unsigned long long>(t.jobs),
                   static_cast<unsigned long long>(t.bytes),
                   static_cast<unsigned long long>(t.dispatches),
                   static_cast<unsigned long long>(t.sim_cycles),
                   st.queue_high_water);
      std::fprintf(stderr,
                   "failures: %llu jobs failed | %llu backend fallbacks\n",
                   static_cast<unsigned long long>(st.failed),
                   static_cast<unsigned long long>(t.fallbacks));
      for (usize s = 0; s < st.shards.size(); ++s) {
        const ShardStats& sh = st.shards[s];
        std::fprintf(
            stderr,
            "  shard %zu: jobs %llu | dispatches %llu | failures %llu | "
            "fallbacks %llu | queue depth %zu\n",
            s, static_cast<unsigned long long>(sh.jobs),
            static_cast<unsigned long long>(sh.dispatches),
            static_cast<unsigned long long>(sh.failures),
            static_cast<unsigned long long>(sh.fallbacks),
            s < st.queue_shard_depths.size() ? st.queue_shard_depths[s] : 0);
      }
      const sim::TraceCacheStats tc = sim::TraceCache::global().stats();
      // `backend` is the tier dispatches start on; `effective` is the one
      // that completed the most recent dispatch (differs after a mid-chain
      // demotion). The host ISA is printed when host-simd actually ran.
      std::string effective = st.effective_backend;
      if (!st.host_simd_isa.empty()) {
        effective += " [" + st.host_simd_isa + "]";
      }
      std::fprintf(stderr,
                   "backend: %s | effective %s | compile %.2f ms | "
                   "trace compiles %llu (%.2f ms) | fusions %llu (%.2f ms) | "
                   "lowerings %llu (%.2f ms) | cache hits %llu | "
                   "rejected %llu | fusion coverage %.1f%% | "
                   "host-simd coverage %.1f%%\n",
                   st.backend.c_str(), effective.c_str(),
                   static_cast<double>(st.backend_compile_ns) / 1e6,
                   static_cast<unsigned long long>(tc.compiles),
                   static_cast<double>(tc.compile_ns) / 1e6,
                   static_cast<unsigned long long>(tc.fusions),
                   static_cast<double>(tc.fuse_ns) / 1e6,
                   static_cast<unsigned long long>(tc.lowerings),
                   static_cast<double>(tc.lower_ns) / 1e6,
                   static_cast<unsigned long long>(tc.hits),
                   static_cast<unsigned long long>(tc.failures),
                   100.0 * st.fusion_coverage, 100.0 * st.host_simd_coverage);
      std::fprintf(stderr,
                   "jit: %llu emissions (%.2f ms) | code %llu bytes | "
                   "cache: %llu entries, %llu resident bytes\n",
                   static_cast<unsigned long long>(tc.jit_compiles),
                   static_cast<double>(tc.jit_ns) / 1e6,
                   static_cast<unsigned long long>(st.jit_code_bytes),
                   static_cast<unsigned long long>(tc.entries),
                   static_cast<unsigned long long>(tc.resident_bytes));
      std::fprintf(stderr,
                   "latency: %llu jobs | p50 %.3f ms | p99 %.3f ms | "
                   "p99.9 %.3f ms | max %.3f ms\n",
                   static_cast<unsigned long long>(st.latency.count),
                   static_cast<double>(st.latency.p50_ns) / 1e6,
                   static_cast<double>(st.latency.p99_ns) / 1e6,
                   static_cast<double>(st.latency.p999_ns) / 1e6,
                   static_cast<double>(st.latency.max_ns) / 1e6);
      const ThroughputStats tp = st.throughput();
      std::fprintf(stderr,
                   "throughput: %.0f jobs/s | %.2f MB/s | %.0f perms/s | "
                   "%.0f sim cycles/s\n",
                   tp.jobs_per_sec, tp.mb_per_sec, tp.perms_per_sec,
                   tp.sim_cycles_per_sec);
      std::fprintf(stderr, "step cycles:\n%s",
                   format_step_cycles(t.step_cycles).c_str());
    }
    if (!metrics_json_path.empty()) {
      const std::string json = obs::MetricsRegistry::global().to_json();
      if (metrics_json_path == "-") {
        std::fwrite(json.data(), 1, json.size(), stdout);
        std::fputc('\n', stdout);
      } else {
        std::ofstream out(metrics_json_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "kvx-batch: cannot write '%s'\n",
                       metrics_json_path.c_str());
          return kExitRuntime;
        }
        out << json << '\n';
      }
    }
    if (!trace_out_path.empty()) {
      obs::TraceEventSink::global().disable();
      obs::TraceEventSink::global().write_json(trace_out_path);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "kvx-batch: %s\n", e.what());
    return kExitRuntime;
  }
  return any_failed ? kExitRuntime : kExitOk;
}
