// kvx-as — standalone assembler: KVX assembly source -> KVXIMG1 image.
//
//   kvx-as input.s [-o output.img] [--text-base N] [--data-base N] [--list]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "kvx/asm/assembler.hpp"
#include "kvx/asm/image_io.hpp"
#include "kvx/common/cli.hpp"
#include "kvx/common/error.hpp"
#include "kvx/isa/disasm.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s input.s [-o output.img] [--text-base N]\n"
               "       [--data-base N] [--list]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output = "a.img";
  kvx::assembler::Options options;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (a == "--text-base" && i + 1 < argc) {
      // Decimal or 0x-prefixed hex, checked — no silent truncation to u32.
      options.text_base = static_cast<kvx::u32>(kvx::cli::require_u64(
          "kvx-as", "--text-base", argv[++i], 0, 0xFFFFFFFFull));
    } else if (a == "--data-base" && i + 1 < argc) {
      options.data_base = static_cast<kvx::u32>(kvx::cli::require_u64(
          "kvx-as", "--data-base", argv[++i], 0, 0xFFFFFFFFull));
    } else if (a == "--list") {
      list = true;
    } else if (!a.empty() && a[0] != '-' && input.empty()) {
      input = a;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "kvx-as: cannot open %s\n", input.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();

  try {
    const kvx::assembler::Program program =
        kvx::assembler::assemble(source.str(), options);
    if (list) {
      for (kvx::usize i = 0; i < program.text.size(); ++i) {
        const kvx::u32 addr = program.text_base + static_cast<kvx::u32>(i) * 4;
        std::printf("%08x: %08x  %s\n", addr, program.text[i],
                    kvx::isa::disassemble_word(program.text[i]).c_str());
      }
    }
    std::ofstream out(output, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "kvx-as: cannot write %s\n", output.c_str());
      return 1;
    }
    kvx::assembler::save_image(program, out);
    std::fprintf(stderr, "kvx-as: %zu instructions, %zu data bytes -> %s\n",
                 program.text.size(), program.data.size(), output.c_str());
    return 0;
  } catch (const kvx::Error& e) {
    std::fprintf(stderr, "kvx-as: %s\n", e.what());
    return 1;
  }
}
