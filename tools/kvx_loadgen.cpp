// kvx-loadgen — load generator and correctness checker for kvx-hashd.
//
//   kvx-loadgen [--host ADDR] [--port N] [--connections N] [--requests N]
//               [--window N] [--sessions N] [--squeezes N] [--max-msg N]
//               [--seed N] [--json FILE] [--check]
//
//     --host ADDR        server address            (default 127.0.0.1)
//     --port N           server port               (default 9877)
//     --connections N    parallel client conns     (default 4)
//     --requests N       HASH requests per conn    (default 1000)
//     --window N         pipelined requests/conn   (default 16)
//     --sessions N       streaming XOF sessions/conn (default 2)
//     --squeezes N       SQUEEZE requests/session  (default 4)
//     --max-msg N        max message bytes         (default 600)
//     --seed N           traffic RNG seed          (default 2026)
//     --json FILE        write the benchmark record (BENCH_server.json)
//     --check            SLO gate: exit 1 unless every digest verified,
//                        every response arrived and nothing mismatched
//
// Every OK digest is verified against the host golden model
// (engine::host_reference_digest) and every SQUEEZE against a local
// mirror sponge — the differential-testing discipline of the repo applied
// over the wire. Traffic is the mixed profile of the hash_server example
// (70% SHA3-256, 15% SHAKE128, 15% KMAC256), pipelined `--window` deep
// per connection so the server's batching and backpressure paths actually
// engage. Reports p50/p99/p99.9 request latency and jobs/s.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kvx/common/bits.hpp"
#include "kvx/common/cli.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/engine/job.hpp"
#include "kvx/keccak/sha3.hpp"
#include "kvx/net/frame.hpp"
#include "kvx/net/protocol.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace kvx;

u64 now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Options {
  std::string host = "127.0.0.1";
  u16 port = 9877;
  unsigned connections = 4;
  usize requests = 1000;
  usize window = 16;
  usize sessions = 2;
  usize squeezes = 4;
  usize max_msg = 600;
  u64 seed = 2026;
  std::string json_path;
  bool check = false;
};

/// Outcome of one worker connection.
struct WorkerResult {
  std::vector<u64> latencies_ns;
  usize ok = 0;
  usize failed = 0;       ///< kFailed responses (per-job engine errors)
  usize mismatches = 0;   ///< digests/squeezes differing from the mirror
  usize protocol_errors = 0;
  std::string fatal;      ///< connect/socket/framing failure, "" if none
};

#if defined(__unix__) || defined(__APPLE__)

/// Blocking client connection speaking the framed protocol.
class Client {
 public:
  bool connect_to(const std::string& host, u16 port, std::string& error) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      error = std::strerror(errno);
      return false;
    }
    const int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      error = "invalid address";
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      error = std::strerror(errno);
      return false;
    }
    return true;
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_request(const net::Request& req, std::string& error) {
    std::vector<u8> frame;
    net::append_frame(frame, net::encode_request(req));
    usize sent = 0;
    while (sent < frame.size()) {
      const ssize_t n =
          ::send(fd_, frame.data() + sent, frame.size() - sent, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        error = std::strerror(errno);
        return false;
      }
      sent += static_cast<usize>(n);
    }
    return true;
  }

  /// Block until one complete response arrives.
  std::optional<net::Response> recv_response(std::string& error) {
    std::vector<u8> payload;
    while (!reader_.next(payload)) {
      if (reader_.poisoned()) {
        error = reader_.error();
        return std::nullopt;
      }
      u8 buf[16 * 1024];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        error = std::strerror(errno);
        return std::nullopt;
      }
      if (n == 0) {
        error = "server closed the connection";
        return std::nullopt;
      }
      if (!reader_.feed(std::span<const u8>(buf, static_cast<usize>(n)))) {
        error = reader_.error();
        return std::nullopt;
      }
    }
    std::string decode_error;
    std::optional<net::Response> resp =
        net::decode_response(payload, decode_error);
    if (!resp) error = decode_error;
    return resp;
  }

 private:
  int fd_ = -1;
  net::FrameReader reader_;
};

engine::HashJob make_job(SplitMix64& rng, usize max_msg) {
  engine::HashJob job;
  const u64 pick = rng.below(100);
  job.message.resize(rng.below(static_cast<u64>(max_msg) + 1));
  for (u8& b : job.message) b = static_cast<u8>(rng.next());
  if (pick < 70) {
    job.algo = engine::Algo::kSha3_256;
  } else if (pick < 85) {
    job.algo = engine::Algo::kShake128;
    job.out_len = 64;
  } else {
    job.algo = engine::Algo::kKmac256;
    job.out_len = 32;
    job.key.assign(32, 0x4B);
  }
  return job;
}

/// Run the streaming-session phase: open, squeeze against a local mirror
/// sponge, close. Sequential (window 1) — sessions exercise correctness,
/// the HASH phase exercises load.
void run_sessions(Client& client, const Options& opt, SplitMix64& rng,
                  WorkerResult& result) {
  for (usize s = 0; s < opt.sessions; ++s) {
    std::vector<u8> message(rng.below(static_cast<u64>(opt.max_msg) + 1));
    for (u8& b : message) b = static_cast<u8>(rng.next());
    const bool wide = rng.below(2) == 0;

    net::Request open;
    open.id = 0xA0000000 + s;
    open.op = net::Opcode::kOpenSession;
    open.algo = wide ? engine::Algo::kShake256 : engine::Algo::kShake128;
    open.message = message;
    if (!client.send_request(open, result.fatal)) return;
    std::optional<net::Response> resp = client.recv_response(result.fatal);
    if (!resp) return;
    if (!resp->ok() || resp->body.size() != 8) {
      result.protocol_errors += 1;
      continue;
    }
    const u64 sid = load_le64(std::span<const u8, 8>(resp->body.data(), 8));

    keccak::Xof mirror(wide ? keccak::Sha3Function::kShake256
                            : keccak::Sha3Function::kShake128);
    mirror.absorb(message);

    for (usize q = 0; q < opt.squeezes; ++q) {
      net::Request sq;
      sq.id = open.id + 0x1000 + q;
      sq.op = net::Opcode::kSqueeze;
      sq.session_id = sid;
      sq.squeeze_len = static_cast<u32>(1 + rng.below(512));
      if (!client.send_request(sq, result.fatal)) return;
      resp = client.recv_response(result.fatal);
      if (!resp) return;
      if (!resp->ok()) {
        result.protocol_errors += 1;
        continue;
      }
      // The wire stream must equal a local sponge squeezed through the
      // same cut points — the protocol face of XOF determinism.
      if (resp->body != mirror.squeeze(sq.squeeze_len)) {
        result.mismatches += 1;
      } else {
        result.ok += 1;
      }
    }

    net::Request close;
    close.id = open.id + 0x2000;
    close.op = net::Opcode::kCloseSession;
    close.session_id = sid;
    if (!client.send_request(close, result.fatal)) return;
    resp = client.recv_response(result.fatal);
    if (!resp) return;
    if (!resp->ok()) result.protocol_errors += 1;
  }
}

WorkerResult run_worker(const Options& opt, unsigned index) {
  WorkerResult result;
  Client client;
  if (!client.connect_to(opt.host, opt.port, result.fatal)) return result;
  SplitMix64 rng(opt.seed * 1000003 + index);

  // Liveness probe first: a PING round-trip proves the framing path.
  net::Request ping;
  ping.op = net::Opcode::kPing;
  ping.id = 0xFF;
  if (!client.send_request(ping, result.fatal)) return result;
  if (!client.recv_response(result.fatal)) return result;

  run_sessions(client, opt, rng, result);
  if (!result.fatal.empty()) return result;

  // HASH phase: pipeline `window` requests deep; verify every digest
  // against the host golden model.
  std::unordered_map<u64, std::vector<u8>> expected;
  std::unordered_map<u64, u64> sent_ns;
  usize sent = 0;
  usize received = 0;
  result.latencies_ns.reserve(opt.requests);
  while (received < opt.requests) {
    while (sent < opt.requests && sent - received < opt.window) {
      engine::HashJob job = make_job(rng, opt.max_msg);
      net::Request req;
      req.id = sent;
      req.op = net::Opcode::kHash;
      req.algo = job.algo;
      req.out_len = static_cast<u32>(job.out_len);
      req.key = job.key;
      req.message = job.message;
      expected.emplace(req.id, engine::host_reference_digest(job));
      sent_ns[req.id] = now_ns();
      if (!client.send_request(req, result.fatal)) return result;
      ++sent;
    }
    const std::optional<net::Response> resp =
        client.recv_response(result.fatal);
    if (!resp) return result;
    ++received;
    const auto t_it = sent_ns.find(resp->id);
    const auto e_it = expected.find(resp->id);
    if (t_it == sent_ns.end() || e_it == expected.end()) {
      result.protocol_errors += 1;
      continue;
    }
    result.latencies_ns.push_back(now_ns() - t_it->second);
    if (resp->status == net::Status::kFailed) {
      // Per-job engine failure (expected traffic under fault injection);
      // the demotion path rides in the body.
      result.failed += 1;
    } else if (!resp->ok()) {
      result.protocol_errors += 1;
    } else if (resp->body != e_it->second) {
      result.mismatches += 1;
    } else {
      result.ok += 1;
    }
    sent_ns.erase(t_it);
    expected.erase(e_it);
  }
  return result;
}

#else

WorkerResult run_worker(const Options&, unsigned) {
  WorkerResult r;
  r.fatal = "kvx-loadgen requires a POSIX socket API";
  return r;
}

#endif

u64 percentile(const std::vector<u64>& sorted, double q) {
  if (sorted.empty()) return 0;
  const usize idx = static_cast<usize>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if (a == "--host" && has_next) {
      opt.host = argv[++i];
    } else if (a == "--port" && has_next) {
      opt.port = static_cast<u16>(
          cli::require_unsigned("kvx-loadgen", "--port", argv[++i], 1,
                                65535));
    } else if (a == "--connections" && has_next) {
      opt.connections = cli::require_unsigned("kvx-loadgen", "--connections",
                                              argv[++i], 1, 1024);
    } else if (a == "--requests" && has_next) {
      opt.requests = cli::require_usize("kvx-loadgen", "--requests",
                                        argv[++i], 1, usize{1} << 24);
    } else if (a == "--window" && has_next) {
      opt.window = cli::require_usize("kvx-loadgen", "--window", argv[++i],
                                      1, usize{1} << 16);
    } else if (a == "--sessions" && has_next) {
      opt.sessions = cli::require_usize("kvx-loadgen", "--sessions",
                                        argv[++i], 0, usize{1} << 16);
    } else if (a == "--squeezes" && has_next) {
      opt.squeezes = cli::require_usize("kvx-loadgen", "--squeezes",
                                        argv[++i], 1, usize{1} << 16);
    } else if (a == "--max-msg" && has_next) {
      opt.max_msg = cli::require_usize("kvx-loadgen", "--max-msg", argv[++i],
                                       0, usize{1} << 19);
    } else if (a == "--seed" && has_next) {
      opt.seed = cli::require_u64("kvx-loadgen", "--seed", argv[++i]);
    } else if (a == "--json" && has_next) {
      opt.json_path = argv[++i];
    } else if (a == "--check") {
      opt.check = true;
    } else {
      std::fprintf(
          stderr,
          "usage: kvx-loadgen [--host ADDR] [--port N] [--connections N] "
          "[--requests N] [--window N] [--sessions N] [--squeezes N] "
          "[--max-msg N] [--seed N] [--json FILE] [--check]\n");
      return 2;
    }
  }

  const u64 t0 = now_ns();
  std::vector<WorkerResult> results(opt.connections);
  {
    std::vector<std::thread> workers;
    workers.reserve(opt.connections);
    for (unsigned c = 0; c < opt.connections; ++c) {
      workers.emplace_back(
          [&results, &opt, c] { results[c] = run_worker(opt, c); });
    }
    for (std::thread& w : workers) w.join();
  }
  const u64 elapsed_ns = now_ns() - t0;

  std::vector<u64> latencies;
  usize ok = 0, failed = 0, mismatches = 0, protocol_errors = 0;
  usize fatal_conns = 0;
  for (const WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ns.begin(),
                     r.latencies_ns.end());
    ok += r.ok;
    failed += r.failed;
    mismatches += r.mismatches;
    protocol_errors += r.protocol_errors;
    if (!r.fatal.empty()) {
      ++fatal_conns;
      std::fprintf(stderr, "kvx-loadgen: connection failed: %s\n",
                   r.fatal.c_str());
    }
  }
  std::sort(latencies.begin(), latencies.end());
  const u64 p50 = percentile(latencies, 0.50);
  const u64 p99 = percentile(latencies, 0.99);
  const u64 p999 = percentile(latencies, 0.999);
  const double secs = static_cast<double>(elapsed_ns) / 1e9;
  const double jobs_per_sec =
      secs > 0.0 ? static_cast<double>(latencies.size()) / secs : 0.0;
  const usize expected_responses =
      opt.requests * opt.connections;

  std::printf(
      "kvx-loadgen: %u conns x %zu reqs (+%zu sessions x %zu squeezes) in "
      "%.2f s\n",
      opt.connections, opt.requests, opt.sessions, opt.squeezes, secs);
  std::printf(
      "  verified=%zu failed=%zu mismatches=%zu protocol_errors=%zu\n", ok,
      failed, mismatches, protocol_errors);
  std::printf("  throughput: %.0f jobs/s\n", jobs_per_sec);
  std::printf("  latency: p50=%.3f ms p99=%.3f ms p99.9=%.3f ms\n",
              static_cast<double>(p50) / 1e6,
              static_cast<double>(p99) / 1e6,
              static_cast<double>(p999) / 1e6);

  if (!opt.json_path.empty()) {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "kvx-loadgen: cannot write %s\n",
                   opt.json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"server\",\n"
        "  \"connections\": %u,\n"
        "  \"requests_per_connection\": %zu,\n"
        "  \"responses\": %zu,\n"
        "  \"verified\": %zu,\n"
        "  \"failed\": %zu,\n"
        "  \"mismatches\": %zu,\n"
        "  \"protocol_errors\": %zu,\n"
        "  \"elapsed_ns\": %llu,\n"
        "  \"jobs_per_sec\": %.1f,\n"
        "  \"latency_ns\": {\"p50\": %llu, \"p99\": %llu, \"p999\": %llu}\n"
        "}\n",
        opt.connections, opt.requests, latencies.size(), ok, failed,
        mismatches, protocol_errors,
        static_cast<unsigned long long>(elapsed_ns), jobs_per_sec,
        static_cast<unsigned long long>(p50),
        static_cast<unsigned long long>(p99),
        static_cast<unsigned long long>(p999));
    std::fclose(f);
  }

  if (opt.check) {
    // The SLO gate CI runs: every connection survived, every response
    // arrived, nothing mismatched the golden model, no protocol errors.
    if (fatal_conns != 0 || mismatches != 0 || protocol_errors != 0 ||
        latencies.size() != expected_responses) {
      std::fprintf(stderr,
                   "kvx-loadgen: CHECK FAILED (fatal_conns=%zu "
                   "mismatches=%zu protocol_errors=%zu responses=%zu/%zu)\n",
                   fatal_conns, mismatches, protocol_errors,
                   latencies.size(), expected_responses);
      return 1;
    }
    std::printf("kvx-loadgen: CHECK OK\n");
  }
  return fatal_conns != 0 ? 1 : 0;
}
