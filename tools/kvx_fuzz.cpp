// kvx-fuzz — differential fault-injection fuzzer for the batch engine.
//
//   kvx-fuzz [--seed N] [--jobs N] [--rate R] [--backend B]
//            [--postmortem DIR] [--quick] [-v]
//     --seed N     master seed for job streams and fault plans  (default 1)
//     --jobs N     jobs per engine configuration                (default 600)
//     --rate R     injected-fault probability per decision      (default 1e-3)
//     --backend B  restrict the matrix to one configured backend
//                  (interpreter/trace/fused/host-simd/jit; default: all five)
//     --postmortem DIR  write rate-capped post-mortem dumps to DIR on every
//                  demotion/job failure and arm the crash handler (same as
//                  exporting KVX_POSTMORTEM=DIR)
//     --quick      reduced matrix for CI smoke (SN=3, 2 threads, 120 jobs,
//                  rate 0.02) — still covers all five backends
//     -v           print one line per configuration
//
// Random job streams over all eight algorithms (SHA-3/SHAKE/KMAC) run
// through a BatchHashEngine for every backend × SN × thread-count
// combination with deterministic fault injection armed. Per configuration
// the harness checks the engine's fail-soft contract:
//   * every job that reports ok matches the host golden model bit-exactly
//     (faults must demote or fail, never corrupt silently);
//   * every failed job carries a non-empty error and an empty digest;
//   * EngineStats holds submitted == completed + failed exactly;
//   * the Prometheus counters (kvx_engine_jobs_submitted_total ==
//     jobs_completed_total + job_failures_total) hold the same invariant,
//     delta-checked because the registry is process-global.
//
// Exit codes: 0 all configurations pass, 1 any violation, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "kvx/common/cli.hpp"
#include "kvx/common/error.hpp"
#include "kvx/common/rng.hpp"
#include "kvx/engine/batch_engine.hpp"
#include "kvx/obs/metrics.hpp"
#include "kvx/obs/postmortem.hpp"
#include "kvx/sim/exec_backend.hpp"
#include "kvx/sim/fault_injector.hpp"

namespace {

using namespace kvx;
using namespace kvx::engine;

constexpr int kExitOk = 0;
constexpr int kExitFail = 1;
constexpr int kExitUsage = 2;

constexpr Algo kAlgos[] = {
    Algo::kSha3_224, Algo::kSha3_256, Algo::kSha3_384, Algo::kSha3_512,
    Algo::kShake128, Algo::kShake256, Algo::kKmac128,  Algo::kKmac256,
};

/// Deterministic random job stream: all algorithms, message lengths that
/// exercise 1..3 sponge blocks, keys/customizations on the KMAC jobs.
std::vector<HashJob> make_jobs(u64 seed, usize count) {
  SplitMix64 rng(seed);
  std::vector<HashJob> jobs;
  jobs.reserve(count);
  for (usize n = 0; n < count; ++n) {
    HashJob job;
    job.algo = kAlgos[rng.below(sizeof kAlgos / sizeof kAlgos[0])];
    job.message.resize(1 + static_cast<usize>(rng.below(200)));
    for (u8& b : job.message) b = static_cast<u8>(rng.next());
    if (fixed_digest_bytes(job.algo) == 0) {
      job.out_len = 16 + static_cast<usize>(rng.below(48));
    }
    if (job.algo == Algo::kKmac128 || job.algo == Algo::kKmac256) {
      job.key.resize(16);
      for (u8& b : job.key) b = static_cast<u8>(rng.next());
      if (rng.below(2) == 0) job.customization = {'f', 'u', 'z', 'z'};
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

struct EngineCounterDeltas {
  obs::Counter& submitted;
  obs::Counter& completed;
  obs::Counter& failures;
  obs::Counter& fallbacks;
  u64 submitted0 = 0;
  u64 completed0 = 0;
  u64 failures0 = 0;
  u64 fallbacks0 = 0;

  EngineCounterDeltas()
      : submitted(obs::MetricsRegistry::global().counter(
            "kvx_engine_jobs_submitted_total")),
        completed(obs::MetricsRegistry::global().counter(
            "kvx_engine_jobs_completed_total")),
        failures(obs::MetricsRegistry::global().counter(
            "kvx_engine_job_failures_total")),
        fallbacks(obs::MetricsRegistry::global().counter(
            "kvx_engine_fallbacks_total")) {
    submitted0 = submitted.value();
    completed0 = completed.value();
    failures0 = failures.value();
    fallbacks0 = fallbacks.value();
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: kvx-fuzz [--seed N] [--jobs N] [--rate R] "
               "[--backend B] [--postmortem DIR] [--quick] [-v]\n"
               "  backends: %s\n",
               std::string(sim::kBackendNamesHelp).c_str());
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  u64 seed = 1;
  usize jobs_per_config = 600;
  double rate = 1e-3;
  bool quick = false;
  bool verbose = false;
  std::optional<sim::ExecBackend> only_backend;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if (a == "--seed" && has_next) {
      seed = cli::require_u64("kvx-fuzz", "--seed", argv[++i]);
    } else if (a == "--jobs" && has_next) {
      jobs_per_config = cli::require_usize("kvx-fuzz", "--jobs", argv[++i], 1,
                                           usize{1} << 24);
    } else if (a == "--rate" && has_next) {
      rate = cli::require_f64("kvx-fuzz", "--rate", argv[++i], 0.0, 1.0);
    } else if (a == "--backend" && has_next) {
      only_backend = sim::parse_backend(argv[++i]);
      if (!only_backend.has_value()) {
        std::fprintf(stderr, "kvx-fuzz: unknown backend '%s' (expected %s)\n",
                     argv[i], std::string(sim::kBackendNamesHelp).c_str());
        return kExitUsage;
      }
    } else if (a == "--postmortem" && has_next) {
      // Same effect as exporting KVX_POSTMORTEM: auto dumps on demotions
      // and job failures, crash handler armed.
      obs::pm::set_dump_dir(argv[++i]);
      obs::pm::install_crash_handler();
    } else if (a == "--quick") {
      quick = true;
    } else if (a == "-v" || a == "--verbose") {
      verbose = true;
    } else if (a == "-h" || a == "--help") {
      return usage();
    } else {
      std::fprintf(stderr, "kvx-fuzz: unknown option '%s'\n", a.c_str());
      return kExitUsage;
    }
  }
  std::vector<sim::ExecBackend> backends = {
      sim::ExecBackend::kInterpreter, sim::ExecBackend::kCompiledTrace,
      sim::ExecBackend::kFusedTrace, sim::ExecBackend::kHostSimd,
      sim::ExecBackend::kJit};
  if (only_backend.has_value()) backends = {*only_backend};
  std::vector<unsigned> sns = {1, 3, 6};
  std::vector<unsigned> threads = {1, 8};
  if (quick) {
    sns = {3};
    threads = {2};
    jobs_per_config = std::min<usize>(jobs_per_config, 120);
    rate = 0.02;
  }

  int violations = 0;
  u64 total_jobs = 0;
  u64 total_failed = 0;
  u64 total_fallbacks = 0;
  u64 config_idx = 0;
  const auto report = [&](const char* backend, unsigned sn, unsigned t,
                          const char* what, usize job_idx) {
    std::fprintf(stderr,
                 "kvx-fuzz: VIOLATION [backend=%s sn=%u threads=%u job=%zu]: "
                 "%s\n",
                 backend, sn, t, job_idx, what);
    ++violations;
  };

  for (const sim::ExecBackend backend : backends) {
    for (const unsigned sn : sns) {
      for (const unsigned t : threads) {
        ++config_idx;
        const std::string bname(sim::backend_name(backend));
        const std::vector<HashJob> jobs =
            make_jobs(seed * 0x9E3779B97F4A7C15ull + config_idx,
                      jobs_per_config);

        sim::FaultPlan plan;
        plan.seed = seed + config_idx;
        plan.rate = rate;

        EngineConfig cfg;
        cfg.threads = t;
        cfg.accel = {core::Arch::k64Lmul8, 5 * sn, 24};
        cfg.accel.backend = backend;
        cfg.accel.fault_injector = std::make_shared<sim::FaultInjector>(plan);

        EngineCounterDeltas deltas;
        usize failed = 0;
        u64 fallbacks = 0;
        try {
          BatchHashEngine engine(cfg);
          engine.submit_all(jobs);
          engine.close();
          const std::vector<JobResult> results = engine.drain_results();
          const EngineStats st = engine.stats();

          for (usize i = 0; i < results.size(); ++i) {
            const JobResult& r = results[i];
            if (r.ok()) {
              if (r.digest != host_reference_digest(jobs[i])) {
                report(bname.c_str(), sn, t,
                       "ok job diverges from host golden model", i);
              }
            } else {
              ++failed;
              if (r.error.empty()) {
                report(bname.c_str(), sn, t, "failed job with empty error", i);
              }
              if (!r.digest.empty()) {
                report(bname.c_str(), sn, t,
                       "failed job carries a digest", i);
              }
            }
          }
          if (st.submitted != jobs.size() ||
              st.submitted != st.completed + st.failed ||
              st.failed != failed) {
            report(bname.c_str(), sn, t,
                   "EngineStats invariant submitted == completed + failed "
                   "broken",
                   0);
          }
          const u64 d_sub = deltas.submitted.value() - deltas.submitted0;
          const u64 d_com = deltas.completed.value() - deltas.completed0;
          const u64 d_fail = deltas.failures.value() - deltas.failures0;
          if (d_sub != jobs.size() || d_sub != d_com + d_fail ||
              d_fail != failed) {
            report(bname.c_str(), sn, t,
                   "Prometheus invariant jobs_submitted_total == "
                   "jobs_completed_total + job_failures_total broken",
                   0);
          }
          // Shard attribution: the process-global fallback counter must have
          // moved by exactly the per-shard attributed sum — a demotion that
          // bumps the registry but lands on no shard (or vice versa) means
          // the sharded scheduler's attribution diffing is broken.
          fallbacks = st.totals().fallbacks;
          u64 shard_fallbacks = 0;
          for (const ShardStats& sh : st.shards) shard_fallbacks += sh.fallbacks;
          const u64 d_fb = deltas.fallbacks.value() - deltas.fallbacks0;
          if (d_fb != fallbacks || shard_fallbacks != fallbacks) {
            report(bname.c_str(), sn, t,
                   "fallback shard attribution diverges from "
                   "kvx_engine_fallbacks_total",
                   0);
          }
        } catch (const Error& e) {
          report(bname.c_str(), sn, t, e.what(), 0);
          continue;
        }
        total_jobs += jobs.size();
        total_failed += failed;
        total_fallbacks += fallbacks;
        if (verbose) {
          std::fprintf(stderr,
                       "kvx-fuzz: backend=%s sn=%u threads=%u | %zu jobs | "
                       "%zu failed | %llu fallbacks\n",
                       bname.c_str(), sn, t, jobs.size(), failed,
                       static_cast<unsigned long long>(fallbacks));
        }
      }
    }
  }

  std::printf("kvx-fuzz: %llu jobs over %llu configurations | %llu failed "
              "(per-job) | %llu backend fallbacks | %d violations\n",
              static_cast<unsigned long long>(total_jobs),
              static_cast<unsigned long long>(config_idx),
              static_cast<unsigned long long>(total_failed),
              static_cast<unsigned long long>(total_fallbacks), violations);
  return violations == 0 ? kExitOk : kExitFail;
}
