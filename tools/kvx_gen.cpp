// kvx-gen — emit the generated Keccak assembly programs as .s files (the
// repository's `programs/` reference listings are produced by this tool).
//
//   kvx-gen [--elenum N] [--out DIR]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "kvx/common/cli.hpp"
#include "kvx/core/program_builder.hpp"

int main(int argc, char** argv) {
  using namespace kvx;
  using namespace kvx::core;

  unsigned ele_num = 5;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--elenum" && i + 1 < argc) {
      ele_num = cli::require_unsigned("kvx-gen", "--elenum", argv[++i], 1, 64);
    } else if (a == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--elenum N] [--out DIR]\n", argv[0]);
      return 2;
    }
  }

  struct Variant {
    Arch arch;
    const char* file;
  };
  const Variant variants[] = {
      {Arch::k64Lmul1, "keccak64_lmul1"},
      {Arch::k64Lmul8, "keccak64_lmul8"},
      {Arch::k32Lmul8, "keccak32_lmul8"},
      {Arch::k64PureRvv, "keccak64_pure_rvv"},
      {Arch::k64Fused, "keccak64_fused"},
      {Arch::k64Lmul4Plus1, "keccak64_lmul4plus1"},
  };
  for (const Variant& v : variants) {
    const KeccakProgram prog = build_keccak_program({v.arch, ele_num, 24});
    const std::string path = out_dir + "/" + v.file + ".s";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "kvx-gen: cannot write %s\n", path.c_str());
      return 1;
    }
    out << prog.source;
    std::fprintf(stderr, "kvx-gen: %s (%zu instructions)\n", path.c_str(),
                 prog.image.text.size());
  }
  return 0;
}
