// kvx-objdump — disassemble a KVXIMG1 image (text listing, data hexdump,
// symbol table).
//
//   kvx-objdump image.img [--no-data]
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "kvx/asm/image_io.hpp"
#include "kvx/common/error.hpp"
#include "kvx/isa/disasm.hpp"

int main(int argc, char** argv) {
  std::string input;
  bool dump_data = true;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--no-data") {
      dump_data = false;
    } else if (!a.empty() && a[0] != '-' && input.empty()) {
      input = a;
    } else {
      std::fprintf(stderr, "usage: %s image.img [--no-data]\n", argv[0]);
      return 2;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "usage: %s image.img [--no-data]\n", argv[0]);
    return 2;
  }

  std::ifstream in(input, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "kvx-objdump: cannot open %s\n", input.c_str());
    return 1;
  }
  try {
    const kvx::assembler::Program p = kvx::assembler::load_image(in);

    // Invert the symbol table for labels in the listing.
    std::map<kvx::u32, std::string> labels;
    for (const auto& [name, addr] : p.symbols) labels.emplace(addr, name);

    std::printf("text @ 0x%08x (%zu instructions):\n", p.text_base,
                p.text.size());
    for (kvx::usize i = 0; i < p.text.size(); ++i) {
      const kvx::u32 addr = p.text_base + static_cast<kvx::u32>(i) * 4;
      if (const auto it = labels.find(addr); it != labels.end()) {
        std::printf("%s:\n", it->second.c_str());
      }
      std::printf("  %08x: %08x  %s\n", addr, p.text[i],
                  kvx::isa::disassemble_word(p.text[i]).c_str());
    }

    if (dump_data && !p.data.empty()) {
      std::printf("\ndata @ 0x%08x (%zu bytes):\n", p.data_base,
                  p.data.size());
      for (kvx::usize off = 0; off < p.data.size(); off += 16) {
        const kvx::u32 addr = p.data_base + static_cast<kvx::u32>(off);
        if (const auto it = labels.find(addr); it != labels.end()) {
          std::printf("%s:\n", it->second.c_str());
        }
        std::printf("  %08x:", addr);
        for (kvx::usize k = off; k < std::min(off + 16, p.data.size()); ++k) {
          std::printf(" %02x", p.data[k]);
        }
        std::printf("\n");
      }
    }

    std::printf("\nsymbols (%zu):\n", p.symbols.size());
    for (const auto& [name, addr] : p.symbols) {
      std::printf("  %08x  %s\n", addr, name.c_str());
    }
    return 0;
  } catch (const kvx::Error& e) {
    std::fprintf(stderr, "kvx-objdump: %s\n", e.what());
    return 1;
  }
}
