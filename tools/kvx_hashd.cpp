// kvx-hashd — the production hash service: an epoll event loop
// (kvx/net/server.hpp) in front of the BatchHashEngine, speaking the
// length-prefixed binary protocol of docs/server.md on one TCP port,
// with the Prometheus admin plane (GET /metrics, GET /healthz) on the
// same port.
//
//   kvx-hashd [--port N] [--bind ADDR] [--threads N] [--sn 1|3|6]
//             [--max-queue N] [--max-sessions N] [--inject-faults SPEC]
//             [--postmortem DIR]
//
//     --port N            TCP port (default 9877; 0 = ephemeral)
//     --bind ADDR         bind address          (default 127.0.0.1)
//     --threads N         engine worker shards  (default 4)
//     --sn N              Keccak lanes per shard (1, 3 or 6; default 3)
//     --max-queue N       engine queue bound; anchors the backpressure
//                         watermarks             (default 1024)
//     --max-sessions N    live streaming-XOF session cap (default 1024)
//     --inject-faults S   deterministic fault injection ("seed=7,rate=1e-3")
//                         — the fail-soft demo: faulted jobs demote or fail
//                         individually as kFailed responses, the service
//                         never aborts
//     --postmortem DIR    crash-dump directory (default $KVX_POSTMORTEM or .)
//
// Prints "kvx-hashd: listening on ADDR:PORT" on stdout once accepting (the
// line CI and kvx-loadgen wait for), runs until SIGINT/SIGTERM, then shuts
// down gracefully: intake stops, queued jobs retire, and the fail-soft
// accounting invariant (submitted == completed + failed) is checked at
// rest — a violation makes the exit code nonzero.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "kvx/common/cli.hpp"
#include "kvx/common/error.hpp"
#include "kvx/net/server.hpp"
#include "kvx/obs/postmortem.hpp"
#include "kvx/sim/fault_injector.hpp"

namespace {

kvx::net::HashServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();  // one async-signal-safe write
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kvx;

  net::ServerConfig cfg;
  cfg.port = 9877;
  cfg.engine.threads = 4;
  cfg.engine.accel = {core::Arch::k64Lmul8, 15, 24};  // SN = 3
  cfg.engine.max_queue = 1024;
  std::string fault_spec;
  std::string dump_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_next = i + 1 < argc;
    if (a == "--port" && has_next) {
      cfg.port = static_cast<u16>(
          cli::require_unsigned("kvx-hashd", "--port", argv[++i], 0, 65535));
    } else if (a == "--bind" && has_next) {
      cfg.bind_addr = argv[++i];
    } else if (a == "--threads" && has_next) {
      cfg.engine.threads =
          cli::require_unsigned("kvx-hashd", "--threads", argv[++i], 1, 4096);
    } else if (a == "--sn" && has_next) {
      const unsigned sn =
          cli::require_unsigned("kvx-hashd", "--sn", argv[++i], 1, 6);
      if (sn != 1 && sn != 3 && sn != 6) {
        std::fprintf(stderr, "kvx-hashd: --sn must be 1, 3 or 6\n");
        return 2;
      }
      cfg.engine.accel.ele_num = 5 * sn;
    } else if (a == "--max-queue" && has_next) {
      cfg.engine.max_queue = cli::require_usize("kvx-hashd", "--max-queue",
                                                argv[++i], 4, usize{1} << 20);
    } else if (a == "--max-sessions" && has_next) {
      cfg.max_sessions = cli::require_usize("kvx-hashd", "--max-sessions",
                                            argv[++i], 1, usize{1} << 20);
    } else if (a == "--inject-faults" && has_next) {
      fault_spec = argv[++i];
    } else if (a == "--postmortem" && has_next) {
      dump_dir = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: kvx-hashd [--port N] [--bind ADDR] [--threads N] "
          "[--sn 1|3|6] [--max-queue N] [--max-sessions N] "
          "[--inject-faults SPEC] [--postmortem DIR]\n");
      return 2;
    }
  }

  if (!fault_spec.empty()) {
    try {
      cfg.engine.accel.fault_injector = std::make_shared<sim::FaultInjector>(
          sim::parse_fault_plan(fault_spec));
    } catch (const Error& e) {
      std::fprintf(stderr, "kvx-hashd: --inject-faults: %s\n", e.what());
      return 2;
    }
  }

  // Crash forensics first: a fatal signal from here on leaves a .kvxdump
  // (flight recorder + metrics + shard stats) for kvx-doctor.
  if (dump_dir.empty()) {
    const char* env_dir = std::getenv("KVX_POSTMORTEM");
    dump_dir = env_dir != nullptr ? env_dir : ".";
  }
  obs::pm::set_dump_dir(dump_dir);
  obs::pm::install_crash_handler();

  try {
    net::HashServer server(cfg);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::printf("kvx-hashd: listening on %s:%u (%u shards x SN=%u, "
                "max_queue=%zu)\n",
                cfg.bind_addr.c_str(), unsigned{server.port()},
                server.engine().threads(),
                server.engine().lanes_per_shard(), cfg.engine.max_queue);
    std::fflush(stdout);  // the readiness line tools/CI wait for

    server.run();

    // Graceful shutdown: the loop has exited; stop intake and wait for
    // every queued job to retire, then check the fail-soft invariant at
    // rest.
    server.engine().close();
    std::vector<engine::JobResult> leftovers;
    server.engine().drain_batch(leftovers);
    const engine::EngineStats st = server.engine().stats();
    const net::ServerCounters& c = server.counters();
    std::printf(
        "kvx-hashd: shutdown — %llu submitted, %llu completed, %llu "
        "failed | %llu conns, %llu requests, %llu http, %llu "
        "backpressure engagements\n",
        static_cast<unsigned long long>(st.submitted),
        static_cast<unsigned long long>(st.completed),
        static_cast<unsigned long long>(st.failed),
        static_cast<unsigned long long>(c.accepted),
        static_cast<unsigned long long>(c.requests),
        static_cast<unsigned long long>(c.http_requests),
        static_cast<unsigned long long>(c.backpressure_engagements));
    g_server = nullptr;
    if (st.submitted != st.completed + st.failed) {
      std::fprintf(stderr,
                   "kvx-hashd: INVARIANT VIOLATION: submitted %llu != "
                   "completed %llu + failed %llu\n",
                   static_cast<unsigned long long>(st.submitted),
                   static_cast<unsigned long long>(st.completed),
                   static_cast<unsigned long long>(st.failed));
      return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "kvx-hashd: %s\n", e.what());
    return 1;
  }
}
